"""Connected-car threat modelling walk-through (paper Section V, Table I).

Reproduces the application threat-modelling process for the connected
car: assets, entry points, the sixteen rated threats, the risk
assessment, an attack tree for the EV-ECU disablement goal, and the
regenerated Table I.

Run with::

    python examples/connected_car_threat_model.py
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.analysis.tables import reproduce_table1
from repro.casestudy.connected_car import build_threat_model
from repro.threat.attack_tree import AttackTree, AttackTreeNode, NodeType
from repro.threat.report import render_model_report


def build_ev_ecu_attack_tree() -> AttackTree:
    """An attack tree for the Section V-A goal: disable the EV-ECU."""
    tree = AttackTree(AttackTreeNode("disable-EV-ECU", NodeType.OR))
    tree.add_child(
        "disable-EV-ECU",
        AttackTreeNode("attach-rogue-node-and-spoof", feasibility=0.5, cost=3.0,
                       description="OBD access + spoofed ECU_DISABLE frame"),
    )
    via_infotainment = tree.add_child(
        "disable-EV-ECU", AttackTreeNode("via-infotainment", NodeType.AND, cost=0.0)
    )
    tree.add_child(
        via_infotainment.name,
        AttackTreeNode("exploit-media-browser", feasibility=0.6, cost=2.0),
    )
    tree.add_child(
        via_infotainment.name,
        AttackTreeNode("emit-disable-command-from-head-unit", feasibility=0.8, cost=1.0),
    )
    via_sensor = tree.add_child(
        "disable-EV-ECU", AttackTreeNode("via-compromised-sensor", NodeType.AND, cost=0.0)
    )
    tree.add_child(
        via_sensor.name, AttackTreeNode("compromise-sensor-firmware", feasibility=0.4, cost=4.0)
    )
    tree.add_child(
        via_sensor.name, AttackTreeNode("spoof-from-sensor-node", feasibility=0.9, cost=1.0)
    )
    return tree


def main() -> None:
    model = build_threat_model()

    print(render_model_report(model))
    print()

    assessment = model.risk_assessment()
    print("== Per-asset risk summary ==")
    for asset, summary in assessment.per_asset_summary().items():
        worst = summary.worst_case.render() if summary.worst_case else "-"
        print(
            f"  {asset:<22} threats={summary.threat_count}  "
            f"worst-case DREAD={worst}  highest level={summary.highest_level}"
        )
    print()

    print("== Remediation order (highest DREAD first) ==")
    for threat in assessment.remediation_order()[:5]:
        print(f"  {threat.identifier}  {threat.dread.render():<18} {threat.description}")
    print()

    tree = build_ev_ecu_attack_tree()
    print("== Attack tree: disable the EV-ECU ==")
    print(f"  goal feasibility (no countermeasures): {tree.goal_feasibility():.2f}")
    print(f"  cheapest attack cost                 : {tree.cheapest_path_cost():.1f}")
    blocked = tree.mitigated_feasibility(
        ["attach-rogue-node-and-spoof", "emit-disable-command-from-head-unit",
         "spoof-from-sensor-node"]
    )
    print(f"  feasibility with CAN-ID policies     : {blocked:.2f}")
    print()

    print("== Regenerated Table I ==")
    table = reproduce_table1()
    print(table.render())
    print(f"\nDREAD averages matching the paper: {table.matching_averages}/{table.row_count}")


if __name__ == "__main__":
    main()
