"""Experiment-service walkthrough: submit -> dedup -> stream -> metrics.

The ``repro.service`` layer turns the experiment API into a persistent
queue: submissions are durable SQLite rows, drain workers execute them
through long-lived warm :class:`~repro.api.session.FleetSession`\\ s, and
-- because every outcome is a pure function of its config -- identical
configs are served from a result cache instead of being re-simulated.

This demo starts a real service (HTTP server + one drain-worker
process), submits **two identical configs and one distinct one**, and
shows on the telemetry that exactly two simulations ran: the duplicate
is a ``service.cache_hits`` increment, not a third run.

Run with::

    python examples/service_demo.py
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.api import ExperimentConfig, FleetSession
from repro.service import ExperimentService, ServiceClient

# mixed_ev_dos is seed-sensitive, so the two seeds below are genuinely
# different experiments -- only the repeated (scenario, vehicles, seed)
# triple hashes to the same config and hits the cache.
CONFIG = ExperimentConfig(scenario="mixed_ev_dos", vehicles=40, seed=2018)
DISTINCT = ExperimentConfig(scenario="mixed_ev_dos", vehicles=40, seed=2019)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        db_path = Path(tmp) / "service.db"
        # port=0 binds an ephemeral port; one drain worker is enough to
        # show the single-flight dedup (it is a queue invariant, not a
        # worker-count accident).
        with ExperimentService(db_path, port=0, drain_workers=1) as service:
            client = ServiceClient(service.url)
            print(f"service up at {service.url} (db: {db_path.name})")
            print()

            # 1. Submit 2 identical + 1 distinct config.  Submission is
            #    cheap and non-blocking: each returns a queued job row.
            print("== Submitting 2 identical + 1 distinct config ==")
            first = client.submit(CONFIG)
            duplicate = client.submit(CONFIG)
            distinct = client.submit(DISTINCT)
            for label, job in (
                ("first", first), ("duplicate", duplicate), ("distinct", distinct)
            ):
                print(f"  {label:>9}: job {job['id']} "
                      f"hash {job['config_hash'][:12]}… state={job['state']}")
            assert first["config_hash"] == duplicate["config_hash"]
            assert first["config_hash"] != distinct["config_hash"]
            print()

            # 2. Wait for all three.  The duplicate never simulates: the
            #    queue skips queued jobs whose hash is in flight, and the
            #    worker then serves it bit-identically from the cache.
            results = {
                label: client.result(client.wait(job["id"])["id"])
                for label, job in (
                    ("first", first),
                    ("duplicate", duplicate),
                    ("distinct", distinct),
                )
            }
            print("== Results ==")
            for label, result in results.items():
                print(f"  {label:>9}: fingerprint {result.fingerprint()}")
            assert results["first"].fingerprint() == results["duplicate"].fingerprint()
            assert results["first"].to_dict() == results["duplicate"].to_dict()
            print("  duplicate == first, bit for bit (served from cache)")
            print()

            # 3. The telemetry proves it: 3 completions, 2 simulations,
            #    1 cache hit.  These counters merge across every drain
            #    worker the service owns.
            snapshot = client.metrics()
            print("== Service telemetry ==")
            for name in (
                "service.jobs_completed", "service.runs", "service.cache_hits"
            ):
                print(f"  {name:>25}: {snapshot.counter(name):g}")
            assert snapshot.counter("service.runs") == 2
            assert snapshot.counter("service.cache_hits") == 1
            print()

            # 4. Per-vehicle outcomes stream over chunked NDJSON -- same
            #    bounded-memory contract as FleetSession.iter_outcomes().
            print("== Streaming outcomes for the cached job ==")
            blocked = 0
            for outcome in client.iter_outcomes(duplicate["id"]):
                blocked += outcome.frames_blocked
            print(f"  {CONFIG.vehicles} vehicles streamed, "
                  f"{blocked} frames blocked in total")
            print()

            # 5. And the service never bends determinism: a foreground
            #    run of the same config fingerprints identically.
            with FleetSession(CONFIG) as session:
                direct = session.run()
            assert direct.fingerprint() == results["first"].fingerprint()
            print("foreground FleetSession run fingerprints identically:")
            print(f"  {direct.fingerprint()}")


if __name__ == "__main__":
    main()
