"""Tests for the fast-path frame pipeline.

Covers the trace retention levels (FULL / RING / COUNTERS counter
equivalence), heap-vs-sort arbitration order equivalence, the slimmed
scheduler, bounded inbox retention, the ``detach`` back-reference
regression and the deterministic ``BusTrace.merge`` tie-break.
"""

import heapq

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.bus import CANBus
from repro.can.errors import NodeDetachedError
from repro.can.frame import MAX_STANDARD_ID, CANFrame
from repro.can.node import CANNode
from repro.can.scheduler import Event, EventScheduler
from repro.can.trace import BusTrace, TraceEventKind, TraceLevel


def build_bus(trace_level=TraceLevel.FULL, *names, inbox_limit=None):
    bus = CANBus(EventScheduler(), trace_level=trace_level)
    nodes = {}
    for name in names:
        node = CANNode(name, inbox_limit=inbox_limit)
        bus.attach(node)
        nodes[name] = node
    return bus, nodes


def drive_traffic(bus, nodes, frames):
    for sender, can_id in frames:
        nodes[sender].send(CANFrame(can_id=can_id, data=b"\x01"))
    bus.run_until_idle()


TRAFFIC = [("a", 0x10), ("b", 0x20), ("a", 0x10), ("c", 0x7FF), ("b", 0x20), ("a", 0x30)]


class TestTraceLevels:
    @pytest.mark.parametrize("level", list(TraceLevel))
    def test_counts_identical_across_levels(self, level):
        reference_bus, reference_nodes = build_bus(TraceLevel.FULL, "a", "b", "c")
        drive_traffic(reference_bus, reference_nodes, TRAFFIC)
        bus, nodes = build_bus(level, "a", "b", "c")
        drive_traffic(bus, nodes, TRAFFIC)
        reference = reference_bus.trace
        trace = bus.trace
        assert len(trace) == len(reference)
        assert trace.summary() == reference.summary()
        assert trace.blocked_count() == reference.blocked_count()
        for kind in TraceEventKind:
            assert trace.count(kind) == reference.count(kind)
        for node in ("a", "b", "c", ""):
            assert trace.count_for_node(node) == reference.count_for_node(node)
            assert trace.count_for_node(node, TraceEventKind.DELIVERED) == (
                reference.count_for_node(node, TraceEventKind.DELIVERED)
            )
        for can_id in (0x10, 0x20, 0x30, 0x7FF, 0x555):
            assert trace.count_for_frame_id(can_id) == reference.count_for_frame_id(can_id)
            assert trace.count_for_frame_id(can_id, TraceEventKind.TRANSMITTED) == (
                reference.count_for_frame_id(can_id, TraceEventKind.TRANSMITTED)
            )

    def test_counters_level_allocates_no_records(self):
        trace = BusTrace(level=TraceLevel.COUNTERS)
        assert trace.record(0.0, TraceEventKind.SUBMITTED, CANFrame(can_id=0x1)) is None
        assert len(trace) == 1
        assert trace.records_retained == 0
        assert list(trace) == []
        assert trace.of_kind(TraceEventKind.SUBMITTED) == []
        assert trace.count(TraceEventKind.SUBMITTED) == 1
        with pytest.raises(IndexError):
            trace[0]

    def test_ring_level_bounds_records_but_not_counts(self):
        trace = BusTrace(level=TraceLevel.RING, ring_size=4)
        for i in range(10):
            trace.record(float(i), TraceEventKind.TRANSMITTED, CANFrame(can_id=i))
        assert len(trace) == 10
        assert trace.records_retained == 4
        assert [r.frame.can_id for r in trace] == [6, 7, 8, 9]
        assert trace.count(TraceEventKind.TRANSMITTED) == 10
        assert trace.count_for_frame_id(0, TraceEventKind.TRANSMITTED) == 1

    def test_level_coercion_and_validation(self):
        assert BusTrace(level="counters").level is TraceLevel.COUNTERS
        assert TraceLevel.coerce("RING") is TraceLevel.RING
        with pytest.raises(ValueError):
            TraceLevel.coerce("everything")
        with pytest.raises(ValueError):
            BusTrace(level=TraceLevel.RING, ring_size=0)

    def test_clear_resets_counters(self):
        trace = BusTrace(level=TraceLevel.COUNTERS)
        trace.record(0.0, TraceEventKind.BLOCKED_READ_POLICY, CANFrame(can_id=0x1), node="n")
        trace.clear()
        assert len(trace) == 0
        assert trace.blocked_count() == 0
        assert trace.summary() == {}
        assert trace.count_for_node("n") == 0

    def test_summary_preserves_first_occurrence_order(self):
        trace = BusTrace()
        frame = CANFrame(can_id=0x1)
        trace.record(0.0, TraceEventKind.TRANSMITTED, frame)
        trace.record(0.1, TraceEventKind.SUBMITTED, frame)
        trace.record(0.2, TraceEventKind.TRANSMITTED, frame)
        assert list(trace.summary()) == ["transmitted", "submitted"]


class TestMergeTieBreak:
    def test_same_timestamp_records_merge_deterministically(self):
        first, second = BusTrace(), BusTrace()
        first.record(0.5, TraceEventKind.SUBMITTED, CANFrame(can_id=0x1), node="f1")
        first.record(0.5, TraceEventKind.TRANSMITTED, CANFrame(can_id=0x2), node="f2")
        second.record(0.5, TraceEventKind.DELIVERED, CANFrame(can_id=0x3), node="s1")
        second.record(0.1, TraceEventKind.SUBMITTED, CANFrame(can_id=0x4), node="s2")
        merged = first.merge(second)
        # Time first; at equal times the left trace's records come first,
        # each side keeping its own insertion order.
        assert [r.node for r in merged] == ["s2", "f1", "f2", "s1"]
        # Merging in either direction is deterministic (not necessarily equal).
        again = first.merge(second)
        assert [r.node for r in again] == [r.node for r in merged]

    def test_merge_sums_counters(self):
        first, second = BusTrace(), BusTrace(level=TraceLevel.COUNTERS)
        frame = CANFrame(can_id=0x1)
        first.record(0.0, TraceEventKind.BLOCKED_READ_POLICY, frame, node="n")
        second.record(0.0, TraceEventKind.BLOCKED_READ_POLICY, frame, node="n")
        merged = first.merge(second)
        assert len(merged) == 2
        assert merged.count(TraceEventKind.BLOCKED_READ_POLICY) == 2
        assert merged.blocked_count() == 2
        assert merged.count_for_node("n") == 2
        # Only FULL/RING records are retained; the COUNTERS side had none.
        assert merged.records_retained == 1


class TestArbitrationEquivalence:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=MAX_STANDARD_ID), min_size=1, max_size=60
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_heap_order_matches_sort_order(self, priorities):
        """heappop order over (priority, seq) == stable full sort order."""
        entries = [(priority, seq) for seq, priority in enumerate(priorities)]
        heap = list(entries)
        heapq.heapify(heap)
        popped = [heapq.heappop(heap) for _ in range(len(heap))]
        assert popped == sorted(entries)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=MAX_STANDARD_ID), min_size=1, max_size=40
        )
    )
    @settings(max_examples=25, deadline=None)
    def test_bus_transmits_in_priority_then_submission_order(self, can_ids):
        bus, nodes = build_bus(TraceLevel.FULL, "tx", "rx")
        nodes["rx"].controller.rx_filters.set_default_accept()
        for can_id in can_ids:
            nodes["tx"].send(CANFrame(can_id=can_id, data=b"\x01"))
        bus.run_until_idle()
        transmitted = [r.frame.can_id for r in bus.trace.of_kind(TraceEventKind.TRANSMITTED)]
        # First submission transmits immediately (the bus was idle); the
        # rest arbitrate: lowest id wins, ties in submission order.
        expected = can_ids[:1] + [can_ids[i] for i in sorted(
            range(1, len(can_ids)), key=lambda i: (can_ids[i], i)
        )]
        assert transmitted == expected


class TestDetachRegression:
    def test_detached_node_send_raises(self):
        bus, nodes = build_bus(TraceLevel.FULL, "a", "b")
        bus.detach("a")
        assert nodes["a"].bus is None
        with pytest.raises(NodeDetachedError):
            nodes["a"].send(CANFrame(can_id=0x10))
        # Nothing leaked into the old bus's trace or arbitration queue.
        assert len(bus.trace) == 0
        assert bus.statistics.frames_submitted == 0

    def test_detach_then_reattach_works(self):
        bus, nodes = build_bus(TraceLevel.FULL, "a", "b")
        bus.detach("a")
        bus.attach(nodes["a"])
        assert nodes["a"].send(CANFrame(can_id=0x10))
        bus.run_until_idle()
        assert nodes["b"].received_ids() == [0x10]


class TestInboxRetention:
    def test_bounded_inbox_keeps_newest_frames_and_full_id_log(self):
        bus, nodes = build_bus(TraceLevel.FULL, "tx", "rx", inbox_limit=3)
        nodes["rx"].controller.rx_filters.set_default_accept()
        for can_id in (0x10, 0x11, 0x12, 0x13, 0x14):
            nodes["tx"].send(CANFrame(can_id=can_id, data=b"\x01"))
        bus.run_until_idle()
        rx = nodes["rx"]
        assert rx.counters.received == 5
        assert [f.can_id for f in rx.inbox] == [0x12, 0x13, 0x14]
        assert rx.received_ids() == [0x10, 0x11, 0x12, 0x13, 0x14]
        assert [f.can_id for f in rx.recent_frames(2)] == [0x13, 0x14]
        assert [f.can_id for f in rx.recent_frames(99)] == [0x12, 0x13, 0x14]
        assert rx.recent_frames(0) == []

    def test_set_inbox_limit_roundtrip(self):
        node = CANNode("n")
        assert node.inbox_limit is None
        node.set_inbox_limit(2)
        assert node.inbox_limit == 2
        node.set_inbox_limit(None)
        assert isinstance(node.inbox, list)
        with pytest.raises(ValueError):
            node.set_inbox_limit(0)

    def test_clear_inbox_clears_id_log(self):
        bus, nodes = build_bus(TraceLevel.FULL, "tx", "rx")
        nodes["rx"].controller.rx_filters.set_default_accept()
        nodes["tx"].send(CANFrame(can_id=0x10))
        bus.run_until_idle()
        nodes["rx"].clear_inbox()
        assert nodes["rx"].received_ids() == []


class TestSchedulerSlimming:
    def test_event_has_no_cancelled_field(self):
        assert "cancelled" not in Event.__dataclass_fields__

    def test_schedule_fast_interleaves_deterministically_with_schedule(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(0.1, lambda: order.append("handle"))
        scheduler.schedule_fast(0.1, lambda: order.append("fast"))
        scheduler.schedule_at_fast(0.1, lambda: order.append("at-fast"))
        scheduler.run()
        assert order == ["handle", "fast", "at-fast"]

    def test_handle_event_view(self):
        scheduler = EventScheduler()
        handle = scheduler.schedule(0.25, lambda: None, label="view")
        event = handle.event
        assert isinstance(event, Event)
        assert event.time == pytest.approx(0.25)
        assert event.label == "view"

    def test_cancelled_fast_path_set_is_cleaned_up(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(0.1, lambda: fired.append(1))
        handle.cancel()
        handle.cancel()  # idempotent
        scheduler.schedule(0.2, lambda: fired.append(2))
        scheduler.run()
        assert fired == [2]
        assert scheduler._cancelled == set()

    def test_periodic_single_task_object_reschedules(self):
        scheduler = EventScheduler()
        ticks = []
        scheduler.schedule_periodic(0.1, lambda: ticks.append(round(scheduler.now, 6)), count=4)
        scheduler.run()
        assert ticks == [0.1, 0.2, pytest.approx(0.3), pytest.approx(0.4)]

    def test_periodic_negative_start_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_periodic(0.1, lambda: None, start_delay=-1.0)

    def test_cancel_after_fire_does_not_poison_cancellation_set(self):
        scheduler = EventScheduler()
        handles = [scheduler.schedule(0.1 * (i + 1), lambda: None) for i in range(5)]
        scheduler.run(until=0.35)  # fires the first three
        for handle in handles:
            handle.cancel()  # defensive teardown: some already fired
        assert scheduler._cancelled == {h._sequence for h in handles[3:]}
        scheduler.run()
        assert scheduler._cancelled == set()
        assert scheduler.processed_events == 3

    def test_stale_cancellations_cleared_when_queue_drains(self):
        scheduler = EventScheduler()
        fired = []
        handle = None

        def first():
            fired.append("first")
            handle.cancel()  # cancels itself mid-batch: already fired

        handle = scheduler.schedule(0.1, first)
        scheduler.schedule(0.1, lambda: fired.append("second"))
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler._cancelled == set()
