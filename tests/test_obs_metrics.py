"""Unit coverage for the telemetry primitives (repro.obs).

Registry/instrument semantics, the drain-as-delta contract, span
nesting, the no-op fast path, and both exposition formats.
"""

import json

import pytest

from repro.obs import clock
from repro.obs import metrics as obs_metrics
from repro.obs.export import (
    HistogramSnapshot,
    MetricsSnapshot,
    format_snapshot,
    to_prometheus,
    write_snapshot,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    NOOP_REGISTRY,
    Histogram,
    MetricsRegistry,
    activate,
    active_registry,
)
from repro.obs.spans import _STACK, observe_phase, span


@pytest.fixture(autouse=True)
def _restore_active_registry():
    previous = active_registry()
    yield
    activate(previous)


class TestInstruments:
    def test_counter(self):
        reg = MetricsRegistry()
        reg.inc("a")
        reg.inc("a", 4)
        assert reg.counter("a").value == 5

    def test_gauge_set_and_add(self):
        reg = MetricsRegistry()
        reg.set_gauge("g", 2.5)
        reg.add_gauge("g", 1.0)
        assert reg.gauge("g").value == 3.5

    def test_histogram_le_semantics(self):
        hist = Histogram("h", buckets=(1.0, 2.0))
        hist.observe(1.0)  # le=1.0 bucket (upper-inclusive)
        hist.observe(1.5)  # le=2.0 bucket
        hist.observe(99.0)  # overflow
        assert hist.counts == [1, 1, 1]
        assert hist.count == 3
        assert hist.sum == 101.5

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_instruments_are_cached_by_name(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        assert reg.histogram("h") is reg.histogram("h")


class TestDrainIsDelta:
    def test_drain_zeroes_but_keeps_instruments(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(3)
        reg.observe("h", 0.5)
        first = reg.drain()
        assert first.counter("c") == 3
        assert reg.counter("c") is counter  # instrument identity survives
        counter.inc(2)
        second = reg.drain()
        assert second.counter("c") == 2  # a delta, not a running total
        assert second.histogram("h").count == 0

    def test_drains_merge_to_lifetime_total(self):
        from repro.obs.export import merge_snapshots

        reg = MetricsRegistry()
        parts = []
        for k in range(1, 4):
            reg.inc("c", k)
            reg.observe("h", 0.001 * k)
            parts.append(reg.drain())
        total = merge_snapshots(parts)
        assert total.counter("c") == 6
        assert total.histogram("h").count == 3


class TestActiveRegistry:
    def test_default_is_noop(self):
        assert NOOP_REGISTRY.enabled is False
        assert obs_metrics.ACTIVE.enabled in (True, False)

    def test_activate_returns_previous(self):
        reg = MetricsRegistry()
        previous = activate(reg)
        try:
            assert active_registry() is reg
        finally:
            assert activate(previous) is reg

    def test_noop_registry_swallows_everything(self):
        NOOP_REGISTRY.inc("a")
        NOOP_REGISTRY.observe("h", 1.0)
        NOOP_REGISTRY.set_gauge("g", 1.0)
        snapshot = NOOP_REGISTRY.drain()
        assert snapshot.empty


class TestSpans:
    def test_span_records_wall_and_cpu(self):
        reg = MetricsRegistry()
        with span("work", registry=reg):
            sum(range(1000))
        snap = reg.snapshot()
        assert snap.histogram("phase.work.wall_seconds").count == 1
        assert snap.histogram("phase.work.cpu_seconds").count == 1
        assert snap.histogram("phase.work.wall_seconds").sum >= 0.0

    def test_nesting_produces_dotted_names(self):
        reg = MetricsRegistry()
        activate(reg)
        with span("outer"):
            with span("inner"):
                pass
        snap = reg.snapshot()
        assert snap.histogram("phase.outer.inner.wall_seconds").count == 1
        assert snap.histogram("phase.outer.wall_seconds").count == 1
        assert _STACK == []

    def test_disabled_span_touches_nothing(self):
        activate(NOOP_REGISTRY)
        with span("quiet"):
            pass
        assert _STACK == []

    def test_span_as_decorator(self):
        reg = MetricsRegistry()
        activate(reg)

        @span("decorated")
        def work():
            return 42

        assert work() == 42
        assert reg.snapshot().histogram("phase.decorated.wall_seconds").count == 1

    def test_span_records_on_exception(self):
        reg = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with span("boom", registry=reg):
                raise RuntimeError("boom")
        assert reg.snapshot().histogram("phase.boom.wall_seconds").count == 1
        assert _STACK == []

    def test_observe_phase_without_cpu(self):
        reg = MetricsRegistry()
        observe_phase(reg, "x", 0.25)
        snap = reg.snapshot()
        assert snap.histogram("phase.x.wall_seconds").count == 1
        assert snap.histogram("phase.x.cpu_seconds") is None


class TestClock:
    def test_wall_is_monotonic(self):
        a = clock.wall()
        b = clock.wall()
        assert b >= a

    def test_cpu_advances_under_work(self):
        a = clock.cpu()
        sum(range(200_000))
        assert clock.cpu() >= a


class TestExposition:
    def _snapshot(self) -> MetricsSnapshot:
        reg = MetricsRegistry()
        reg.inc("pool.builds", 2)
        reg.set_gauge("pool.size", 2.0)
        reg.observe("phase.simulate.wall_seconds", 0.002)
        return reg.snapshot()

    def test_json_round_trip(self):
        snap = self._snapshot()
        assert MetricsSnapshot.from_json(snap.to_json()) == snap

    def test_prometheus_shape(self):
        text = to_prometheus(self._snapshot())
        assert "# TYPE repro_pool_builds counter" in text
        assert "repro_pool_builds 2" in text
        assert "# TYPE repro_pool_size gauge" in text
        assert 'le="+Inf"' in text
        assert "repro_phase_simulate_wall_seconds_count 1" in text
        assert text.endswith("\n")

    def test_prometheus_cumulative_buckets(self):
        hist = HistogramSnapshot(buckets=(1.0, 2.0), counts=(1, 2, 3), sum=9.0, count=6)
        snap = MetricsSnapshot.build(histograms={"h": hist})
        text = to_prometheus(snap)
        assert 'repro_h_bucket{le="1"} 1' in text
        assert 'repro_h_bucket{le="2"} 3' in text
        assert 'repro_h_bucket{le="+Inf"} 6' in text

    def test_prometheus_deterministic(self):
        assert to_prometheus(self._snapshot()) == to_prometheus(self._snapshot())
        assert "\n# timestamp" not in to_prometheus(self._snapshot())

    def test_write_snapshot_json(self, tmp_path):
        path = tmp_path / "m.json"
        write_snapshot(self._snapshot(), path, format="json")
        assert json.loads(path.read_text())["counters"]["pool.builds"] == 2

    def test_write_snapshot_prom(self, tmp_path):
        path = tmp_path / "m.prom"
        write_snapshot(self._snapshot(), path, format="prom")
        assert path.read_text().startswith("# TYPE repro_")

    def test_write_snapshot_rejects_unknown_format(self, tmp_path):
        with pytest.raises(ValueError):
            write_snapshot(self._snapshot(), tmp_path / "x", format="xml")

    def test_format_snapshot_table(self):
        text = format_snapshot(self._snapshot())
        assert "pool.builds" in text
        assert "p95<=" in text
        assert format_snapshot(MetricsSnapshot()) == "(empty snapshot)\n"

    def test_histogram_quantile(self):
        hist = HistogramSnapshot(
            buckets=(1.0, 2.0, 4.0), counts=(5, 4, 1, 0), sum=14.0, count=10
        )
        assert hist.quantile(0.5) == 1.0
        assert hist.quantile(0.9) == 2.0
        assert hist.quantile(0.95) == 4.0  # rank 9.5 falls in the le=4 bucket
        assert hist.mean == 1.4

    def test_default_buckets_cover_microseconds_to_seconds(self):
        assert DEFAULT_TIME_BUCKETS[0] == 1e-6
        assert DEFAULT_TIME_BUCKETS[-1] == 10.0
        assert list(DEFAULT_TIME_BUCKETS) == sorted(DEFAULT_TIME_BUCKETS)
