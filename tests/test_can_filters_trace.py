"""Tests for software acceptance filters and the bus trace."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.filters import AcceptanceFilter, FilterBank
from repro.can.frame import MAX_STANDARD_ID, CANFrame
from repro.can.trace import BusTrace, TraceEventKind

standard_ids = st.integers(min_value=0, max_value=MAX_STANDARD_ID)


class TestAcceptanceFilter:
    def test_exact_filter(self):
        acceptance = AcceptanceFilter.exact(0x123)
        assert acceptance.matches(CANFrame(can_id=0x123))
        assert not acceptance.matches(CANFrame(can_id=0x124))

    def test_accept_all(self):
        acceptance = AcceptanceFilter.accept_all()
        assert acceptance.matches(CANFrame(can_id=0x000))
        assert acceptance.matches(CANFrame(can_id=0x7FF))

    def test_masked_match(self):
        # Match any identifier in the 0x100-0x10F range.
        acceptance = AcceptanceFilter(value=0x100, mask=0x7F0)
        assert acceptance.matches_id(0x105)
        assert not acceptance.matches_id(0x115)

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            AcceptanceFilter(value=-1, mask=0)
        with pytest.raises(ValueError):
            AcceptanceFilter(value=0, mask=0x3FFFFFFF)

    @given(standard_ids)
    def test_exact_filter_matches_only_itself(self, can_id):
        acceptance = AcceptanceFilter.exact(can_id)
        assert acceptance.matches_id(can_id)
        assert not acceptance.matches_id((can_id + 1) & MAX_STANDARD_ID) or MAX_STANDARD_ID == 0


class TestFilterBank:
    def test_empty_bank_default_accept(self):
        assert FilterBank().accepts(CANFrame(can_id=0x1))

    def test_empty_bank_default_reject(self):
        bank = FilterBank()
        bank.set_default_reject()
        assert not bank.accepts(CANFrame(can_id=0x1))
        bank.set_default_accept()
        assert bank.accepts(CANFrame(can_id=0x1))

    def test_configured_bank_accepts_only_matches(self):
        bank = FilterBank()
        bank.add_exact(0x10)
        bank.add_exact(0x20)
        assert bank.accepts(CANFrame(can_id=0x10))
        assert bank.accepts_id(0x20)
        assert not bank.accepts(CANFrame(can_id=0x30))

    def test_compromise_bypasses_filtering(self):
        bank = FilterBank()
        bank.set_default_reject()
        bank.add_exact(0x10)
        assert not bank.accepts_id(0x30)
        bank.compromise()
        assert bank.compromised
        assert bank.accepts_id(0x30)
        bank.restore()
        assert not bank.accepts_id(0x30)

    def test_clear_and_len(self):
        bank = FilterBank([AcceptanceFilter.exact(0x10)])
        assert len(bank) == 1
        bank.clear()
        assert len(bank) == 0

    @given(st.sets(standard_ids, min_size=1, max_size=16), standard_ids)
    def test_bank_accepts_exactly_configured_ids(self, approved, probe):
        bank = FilterBank()
        bank.set_default_reject()
        for can_id in approved:
            bank.add_exact(can_id)
        assert bank.accepts_id(probe) == (probe in approved)


class TestBusTrace:
    def make_trace(self) -> BusTrace:
        trace = BusTrace()
        frame_a = CANFrame(can_id=0x10, source="Sensors")
        frame_b = CANFrame(can_id=0x20, source="EV-ECU")
        trace.record(0.0, TraceEventKind.SUBMITTED, frame_a, node="Sensors")
        trace.record(0.1, TraceEventKind.TRANSMITTED, frame_a, node="Sensors")
        trace.record(0.1, TraceEventKind.DELIVERED, frame_a, node="EV-ECU")
        trace.record(0.2, TraceEventKind.BLOCKED_READ_POLICY, frame_b, node="EPS",
                     detail="not approved")
        return trace

    def test_counts_and_queries(self):
        trace = self.make_trace()
        assert len(trace) == 4
        assert trace.count(TraceEventKind.DELIVERED) == 1
        assert len(trace.of_kind(TraceEventKind.TRANSMITTED)) == 1
        assert len(trace.for_frame_id(0x10)) == 3
        assert len(trace.for_node("EPS")) == 1
        assert trace[0].kind is TraceEventKind.SUBMITTED

    def test_blocked_and_delivered_helpers(self):
        trace = self.make_trace()
        assert len(trace.blocked()) == 1
        assert trace.was_delivered("EV-ECU", 0x10)
        assert not trace.was_delivered("EV-ECU", 0x20)
        assert len(trace.delivered_to("EV-ECU")) == 1

    def test_summary(self):
        summary = self.make_trace().summary()
        assert summary["delivered"] == 1
        assert summary["blocked-read-policy"] == 1

    def test_filter_predicate(self):
        trace = self.make_trace()
        late = trace.filter(lambda r: r.time >= 0.1)
        assert len(late) == 3

    def test_merge_orders_by_time(self):
        first, second = BusTrace(), BusTrace()
        frame = CANFrame(can_id=0x1)
        first.record(0.5, TraceEventKind.TRANSMITTED, frame)
        second.record(0.1, TraceEventKind.SUBMITTED, frame)
        merged = first.merge(second)
        assert [r.time for r in merged] == [0.1, 0.5]

    def test_clear(self):
        trace = self.make_trace()
        trace.clear()
        assert len(trace) == 0


class TestCompiledAcceptMask:
    """The compiled acceptance bitset answers exactly like accepts_id."""

    def test_exact_filters_compile(self):
        bank = FilterBank(default_accept=False)
        for can_id in (0x10, 0x7FF, 0x0):
            bank.add_exact(can_id)
        mask = bank.compile_mask()
        for can_id in range(MAX_STANDARD_ID + 1):
            bit = bool(mask[can_id >> 3] >> (can_id & 7) & 1)
            assert bit == bank.accepts_id(can_id), hex(can_id)

    def test_partial_mask_filters_compile(self):
        bank = FilterBank(default_accept=False)
        bank.add(AcceptanceFilter(value=0x100, mask=0x700))
        mask = bank.compile_mask()
        for can_id in range(MAX_STANDARD_ID + 1):
            bit = bool(mask[can_id >> 3] >> (can_id & 7) & 1)
            assert bit == bank.accepts_id(can_id), hex(can_id)

    def test_empty_bank_defaults(self):
        assert set(FilterBank(default_accept=True).compile_mask()) == {0xFF}
        assert set(FilterBank(default_accept=False).compile_mask()) == {0}

    def test_mutation_invalidates(self):
        bank = FilterBank(default_accept=False)
        bank.add_exact(0x10)
        first = bank.compile_mask()
        bank.add_exact(0x20)
        second = bank.compile_mask()
        assert first is not second
        assert second[0x20 >> 3] >> (0x20 & 7) & 1

    def test_compromise_does_not_change_compiled_mask(self):
        bank = FilterBank(default_accept=False)
        bank.add_exact(0x10)
        before = bank.compile_mask()
        bank.compromise()
        # The mask reflects the configured filters; the compromise
        # bypass is checked separately by callers (as accepts_id does).
        assert bank.compile_mask() == before
        assert bank.accepts_id(0x555)

    @given(
        values=st.lists(
            st.integers(min_value=0, max_value=MAX_STANDARD_ID), max_size=12
        ),
        default_accept=st.booleans(),
        probes=st.lists(
            st.integers(min_value=0, max_value=MAX_STANDARD_ID),
            min_size=1,
            max_size=40,
        ),
    )
    def test_fuzzed_equivalence(self, values, default_accept, probes):
        bank = FilterBank(default_accept=default_accept)
        for value in values:
            bank.add_exact(value)
        mask = bank.compile_mask()
        for can_id in probes:
            bit = bool(mask[can_id >> 3] >> (can_id & 7) & 1)
            assert bit == bank.accepts_id(can_id)
