"""Tests for the HPE register file and the tamper model."""

import pytest

from repro.hpe.registers import AccessError, RegisterFile
from repro.hpe.tamper import (
    AUTHORISED_SOURCES,
    TamperLog,
    TamperSource,
    is_authorised,
)


class TestRegisterFile:
    def test_read_write_with_key(self):
        registers = RegisterFile(size=4, configuration_key=0x111)
        registers.write(0, 0xDEADBEEF, key=0x111)
        assert registers.read(0) == 0xDEADBEEF
        assert len(registers) == 4

    def test_values_masked_to_32_bits(self):
        registers = RegisterFile(configuration_key=0x111)
        registers.write(0, 0x1_FFFF_FFFF, key=0x111)
        assert registers.read(0) == 0xFFFFFFFF

    def test_wrong_key_rejected_and_logged(self):
        registers = RegisterFile(configuration_key=0x111)
        with pytest.raises(AccessError):
            registers.write(0, 1, key=0x222, source="firmware")
        assert registers.read(0) == 0
        denied = registers.denied_accesses()
        assert len(denied) == 1
        assert denied[0].source == "firmware"

    def test_write_lock(self):
        registers = RegisterFile(configuration_key=0x111)
        registers.lock_writes()
        assert registers.write_locked
        with pytest.raises(AccessError):
            registers.write(0, 1, key=0x111)
        registers.unlock_writes(0x111)
        registers.write(0, 1, key=0x111)
        assert registers.read(0) == 1

    def test_unlock_requires_key(self):
        registers = RegisterFile(configuration_key=0x111)
        registers.lock_writes()
        with pytest.raises(AccessError):
            registers.unlock_writes(0x999)
        assert registers.write_locked

    def test_bad_address_rejected(self):
        registers = RegisterFile(size=2, configuration_key=0x111)
        with pytest.raises(AccessError):
            registers.read(5)
        with pytest.raises(AccessError):
            registers.write(-1, 0, key=0x111)

    def test_access_log_records_reads_and_writes(self):
        registers = RegisterFile(configuration_key=0x111)
        registers.write(0, 1, key=0x111)
        registers.read(0)
        log = registers.access_log()
        assert len(log) == 2
        assert log[0].write and log[0].granted
        assert not log[1].write

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            RegisterFile(size=0)


class TestTamperModel:
    def test_only_oem_channel_authorised(self):
        assert AUTHORISED_SOURCES == frozenset({TamperSource.OEM_UPDATE_CHANNEL})
        assert is_authorised(TamperSource.OEM_UPDATE_CHANNEL)
        assert not is_authorised(TamperSource.NODE_FIRMWARE)
        assert not is_authorised(TamperSource.BUS_MESSAGE)
        assert not is_authorised(TamperSource.PHYSICAL_DEBUG)

    def test_log_partitions_attempts(self):
        log = TamperLog()
        log.record(TamperSource.NODE_FIRMWARE, "rewrite lists", succeeded=False)
        log.record(TamperSource.OEM_UPDATE_CHANNEL, "policy update", succeeded=True)
        assert len(log) == 2
        assert len(log.rejected()) == 1
        assert len(log.succeeded()) == 1
        assert log.unauthorised_successes() == []

    def test_unauthorised_success_detected(self):
        log = TamperLog()
        log.record(TamperSource.NODE_FIRMWARE, "rewrite lists", succeeded=True)
        assert len(log.unauthorised_successes()) == 1
