"""Tests for the fleet scenario registry and spec materialisation."""

import random

import pytest

from repro.fleet.scenarios import (
    FleetScenario,
    VehicleAction,
    VehicleSpec,
    get_scenario,
    register_scenario,
    registered_scenarios,
    temporary_scenario,
    unregister_scenario,
)

BUILTIN_NAMES = {
    "baseline_cruise",
    "fleet_replay_storm",
    "staggered_ota_rollout",
    "mixed_ev_dos",
    "fuzz_probe",
}


def _noop_script(index: int, rng: random.Random):
    return (VehicleAction(0.0, "drive", {"accel": rng.randint(30, 90)}),)


def make_scenario(name: str = "custom_test_scenario") -> FleetScenario:
    return FleetScenario(
        name=name,
        description="test scenario",
        duration_s=0.1,
        mix=(("hpe+selinux", 0.5), ("unprotected", 0.5)),
        script=_noop_script,
    )


class TestRegistry:
    def test_builtin_workloads_are_registered(self):
        names = {scenario.name for scenario in registered_scenarios()}
        assert BUILTIN_NAMES <= names

    def test_register_get_unregister_round_trip(self):
        scenario = make_scenario()
        register_scenario(scenario)
        try:
            assert get_scenario(scenario.name) is scenario
            assert scenario.name in {s.name for s in registered_scenarios()}
        finally:
            removed = unregister_scenario(scenario.name)
        assert removed is scenario
        with pytest.raises(KeyError):
            get_scenario(scenario.name)

    def test_duplicate_registration_rejected_unless_replacing(self):
        scenario = make_scenario()
        register_scenario(scenario)
        try:
            with pytest.raises(ValueError):
                register_scenario(make_scenario())
            replacement = make_scenario()
            register_scenario(replacement, replace_existing=True)
            assert get_scenario(scenario.name) is replacement
        finally:
            unregister_scenario(scenario.name)

    def test_unknown_scenario_error_names_known_ones(self):
        with pytest.raises(KeyError, match="baseline_cruise"):
            get_scenario("no_such_workload")


class TestDecoratorRegistration:
    def test_decorator_builds_and_registers_the_scenario(self):
        @register_scenario(
            name="decorated_test_scenario",
            duration_s=0.1,
            mix=(("hpe+selinux", 1.0),),
            parameters={"accel": 55},
        )
        def decorated_script(index, rng):
            """Decorated steady driving."""
            return (VehicleAction(0.0, "drive", {"accel": 55}),)

        try:
            assert isinstance(decorated_script, FleetScenario)
            assert get_scenario("decorated_test_scenario") is decorated_script
            # The docstring's first line became the description.
            assert decorated_script.description == "Decorated steady driving."
            assert dict(decorated_script.parameters) == {"accel": 55}
            specs = decorated_script.vehicle_specs(3, seed=1)
            assert all(spec.actions[0].param("accel") == 55 for spec in specs)
        finally:
            unregister_scenario("decorated_test_scenario")

    def test_explicit_description_beats_the_docstring(self):
        @register_scenario(
            name="described_test_scenario",
            description="explicit wins",
            duration_s=0.1,
            mix=(("unprotected", 1.0),),
        )
        def scripted(index, rng):
            """Docstring loses."""
            return ()

        try:
            assert scripted.description == "explicit wins"
        finally:
            unregister_scenario("described_test_scenario")

    def test_decorator_form_requires_the_scenario_fields(self):
        with pytest.raises(TypeError, match="name=, duration_s= and mix="):
            register_scenario(name="incomplete")

    def test_positional_argument_must_be_a_scenario(self):
        with pytest.raises(TypeError, match="FleetScenario"):
            register_scenario(_noop_script)


class TestParameterAwareScripts:
    def test_three_argument_script_receives_parameter_overrides(self):
        @register_scenario(
            name="param_aware_test",
            duration_s=0.1,
            mix=(("hpe+selinux", 1.0),),
            parameters={"accel": 40},
        )
        def scripted(index, rng, params):
            """Parameter-aware steady driving."""
            return (VehicleAction(0.0, "drive", {"accel": params["accel"]}),)

        try:
            base = scripted.vehicle_specs(2, seed=1)
            assert all(spec.actions[0].param("accel") == 40 for spec in base)
            tuned = scripted.with_parameters(accel=90).vehicle_specs(2, seed=1)
            assert all(spec.actions[0].param("accel") == 90 for spec in tuned)
        finally:
            unregister_scenario("param_aware_test")

    def test_two_argument_scripts_treat_parameters_as_metadata(self):
        scenario = get_scenario("baseline_cruise")
        overridden = scenario.with_parameters(accel_range=(1, 2))
        assert overridden.vehicle_specs(3, seed=1) == scenario.vehicle_specs(3, seed=1)


class TestTemporaryScenario:
    def test_registers_for_the_block_only(self):
        scenario = make_scenario("temp_test_scenario")
        with temporary_scenario(scenario) as active:
            assert active is scenario
            assert get_scenario("temp_test_scenario") is scenario
        with pytest.raises(KeyError):
            get_scenario("temp_test_scenario")

    def test_shadows_and_restores_an_existing_scenario(self):
        builtin = get_scenario("baseline_cruise")
        shadow = make_scenario("baseline_cruise")
        with temporary_scenario(shadow):
            assert get_scenario("baseline_cruise") is shadow
        assert get_scenario("baseline_cruise") is builtin

    def test_restores_even_when_the_block_raises(self):
        scenario = make_scenario("temp_raises_scenario")
        with pytest.raises(RuntimeError):
            with temporary_scenario(scenario):
                raise RuntimeError("boom")
        with pytest.raises(KeyError):
            get_scenario("temp_raises_scenario")


class TestScenarioValidation:
    def test_rejects_unknown_enforcement_label(self):
        with pytest.raises(ValueError, match="enforcement label"):
            FleetScenario(
                name="bad",
                description="",
                duration_s=0.1,
                mix=(("tinfoil", 1.0),),
                script=_noop_script,
            )

    def test_rejects_nonpositive_duration_and_weights(self):
        with pytest.raises(ValueError):
            FleetScenario(
                name="bad", description="", duration_s=0.0,
                mix=(("unprotected", 1.0),), script=_noop_script,
            )
        with pytest.raises(ValueError):
            FleetScenario(
                name="bad", description="", duration_s=0.1,
                mix=(("unprotected", 0.0),), script=_noop_script,
            )

    def test_with_parameters_records_overrides(self):
        scenario = make_scenario().with_parameters(frames=99)
        assert dict(scenario.parameters)["frames"] == 99


class TestSpecMaterialisation:
    def test_same_seed_materialises_identical_specs(self):
        scenario = get_scenario("mixed_ev_dos")
        assert scenario.vehicle_specs(20, seed=5) == scenario.vehicle_specs(20, seed=5)

    def test_different_seeds_differ(self):
        scenario = get_scenario("mixed_ev_dos")
        assert scenario.vehicle_specs(20, seed=5) != scenario.vehicle_specs(20, seed=6)

    def test_specs_cover_the_declared_mix(self):
        scenario = get_scenario("mixed_ev_dos")
        specs = scenario.vehicle_specs(200, seed=1)
        labels = {spec.enforcement for spec in specs}
        assert labels == {label for label, _ in scenario.mix}

    def test_batched_materialisation_composes_with_combined(self):
        scenario = get_scenario("mixed_ev_dos")
        combined = scenario.vehicle_specs(8, seed=4)
        batched = scenario.vehicle_specs(4, seed=4) + scenario.vehicle_specs(
            4, seed=4, first_vehicle_id=4
        )
        assert batched == combined

    def test_vehicle_ids_are_sequential_from_first_id(self):
        specs = get_scenario("baseline_cruise").vehicle_specs(5, seed=1, first_vehicle_id=100)
        assert [spec.vehicle_id for spec in specs] == [100, 101, 102, 103, 104]

    def test_actions_are_time_sorted(self):
        for spec in get_scenario("staggered_ota_rollout").vehicle_specs(10, seed=3):
            times = [action.time for action in spec.actions]
            assert times == sorted(times)

    def test_fleet_size_must_be_positive(self):
        with pytest.raises(ValueError):
            get_scenario("baseline_cruise").vehicle_specs(0, seed=1)


class TestSerialisationRoundTrip:
    def test_action_round_trips_through_dict(self):
        action = VehicleAction(0.25, "flood", {"frames": 50, "window_s": 0.1})
        rebuilt = VehicleAction.from_dict(action.to_dict())
        assert rebuilt == action
        assert rebuilt.param("frames") == 50
        assert rebuilt.param("missing", "fallback") == "fallback"

    def test_spec_round_trips_through_dict(self):
        for spec in get_scenario("fleet_replay_storm").vehicle_specs(5, seed=9):
            assert VehicleSpec.from_dict(spec.to_dict()) == spec

    def test_spec_round_trips_through_actual_json(self):
        import json

        for spec in get_scenario("fleet_replay_storm").vehicle_specs(5, seed=9):
            rebuilt = VehicleSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
            assert rebuilt == spec
            assert all(hash(action) is not None for action in rebuilt.actions)

    def test_action_params_are_canonically_sorted(self):
        a = VehicleAction(0.1, "drive", {"b": 2, "a": 1})
        b = VehicleAction(0.1, "drive", {"a": 1, "b": 2})
        assert a == b
        assert a.params == (("a", 1), ("b", 2))

    def test_action_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match=r"unknown VehicleAction key\(s\) \['knid'\]"):
            VehicleAction.from_dict({"time": 0.1, "kind": "drive", "knid": "typo"})

    def test_action_rejects_missing_required_keys(self):
        with pytest.raises(ValueError, match="missing required VehicleAction"):
            VehicleAction.from_dict({"time": 0.1})

    def test_spec_rejects_unknown_keys(self):
        data = get_scenario("baseline_cruise").vehicle_specs(1, seed=1)[0].to_dict()
        data["enforcment"] = data.pop("enforcement")
        with pytest.raises(ValueError, match="enforcment"):
            VehicleSpec.from_dict(data)

    def test_spec_rejects_missing_required_keys(self):
        with pytest.raises(ValueError, match="missing required VehicleSpec"):
            VehicleSpec.from_dict({"vehicle_id": 1, "scenario": "x"})
