"""Tests for attack trees."""

import pytest

from repro.threat.attack_tree import AttackTree, AttackTreeNode, NodeType


def build_example_tree() -> AttackTree:
    """Goal: disable the EV-ECU.

    OR(
        spoof-direct (leaf, 0.4),
        AND(compromise-infotainment (0.5), pivot-to-bus (0.8))
    )
    """
    tree = AttackTree(AttackTreeNode("disable-ecu", NodeType.OR))
    tree.add_child("disable-ecu", AttackTreeNode("spoof-direct", feasibility=0.4, cost=2.0))
    tree.add_child(
        "disable-ecu", AttackTreeNode("via-infotainment", NodeType.AND, cost=0.0)
    )
    tree.add_child(
        "via-infotainment",
        AttackTreeNode("compromise-infotainment", feasibility=0.5, cost=3.0),
    )
    tree.add_child(
        "via-infotainment", AttackTreeNode("pivot-to-bus", feasibility=0.8, cost=1.0)
    )
    return tree


class TestConstruction:
    def test_children_and_leaves(self):
        tree = build_example_tree()
        assert {c.name for c in tree.children("disable-ecu")} == {
            "spoof-direct", "via-infotainment",
        }
        assert {leaf.name for leaf in tree.leaves()} == {
            "spoof-direct", "compromise-infotainment", "pivot-to-bus",
        }
        assert len(tree) == 5
        assert "pivot-to-bus" in tree

    def test_cannot_attach_to_leaf(self):
        tree = build_example_tree()
        with pytest.raises(ValueError):
            tree.add_child("spoof-direct", AttackTreeNode("x"))

    def test_unknown_parent_rejected(self):
        tree = build_example_tree()
        with pytest.raises(KeyError):
            tree.add_child("nope", AttackTreeNode("x"))

    def test_invalid_feasibility_rejected(self):
        with pytest.raises(ValueError):
            AttackTreeNode("x", feasibility=1.5)

    def test_negative_cost_rejected(self):
        with pytest.raises(ValueError):
            AttackTreeNode("x", cost=-1)

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            AttackTreeNode("  ")


class TestAnalysis:
    def test_goal_feasibility(self):
        tree = build_example_tree()
        and_branch = 0.5 * 0.8
        expected = 1 - (1 - 0.4) * (1 - and_branch)
        assert tree.goal_feasibility() == pytest.approx(expected)

    def test_cheapest_path_cost(self):
        tree = build_example_tree()
        # Direct spoof costs 2.0; the infotainment chain costs 3.0 + 1.0.
        assert tree.cheapest_path_cost() == pytest.approx(2.0)

    def test_attack_scenarios_are_minimal_cut_sets(self):
        scenarios = build_example_tree().attack_scenarios()
        assert frozenset({"spoof-direct"}) in scenarios
        assert frozenset({"compromise-infotainment", "pivot-to-bus"}) in scenarios
        assert len(scenarios) == 2

    def test_mitigated_feasibility_drops_when_leaf_blocked(self):
        tree = build_example_tree()
        baseline = tree.goal_feasibility()
        blocked = tree.mitigated_feasibility(["spoof-direct"])
        assert blocked < baseline
        assert blocked == pytest.approx(0.5 * 0.8)

    def test_blocking_all_leaves_gives_zero(self):
        tree = build_example_tree()
        assert tree.mitigated_feasibility(
            ["spoof-direct", "compromise-infotainment", "pivot-to-bus"]
        ) == pytest.approx(0.0)

    def test_mitigated_feasibility_unknown_leaf_rejected(self):
        with pytest.raises(KeyError):
            build_example_tree().mitigated_feasibility(["nope"])

    def test_single_leaf_tree(self):
        tree = AttackTree(AttackTreeNode("simple", feasibility=0.3, cost=5.0))
        assert tree.goal_feasibility() == pytest.approx(0.3)
        assert tree.cheapest_path_cost() == pytest.approx(5.0)
        assert tree.attack_scenarios() == [frozenset({"simple"})]

    def test_and_requires_all_children(self):
        tree = AttackTree(AttackTreeNode("goal", NodeType.AND))
        tree.add_child("goal", AttackTreeNode("a", feasibility=1.0))
        tree.add_child("goal", AttackTreeNode("b", feasibility=0.0))
        assert tree.goal_feasibility() == pytest.approx(0.0)
