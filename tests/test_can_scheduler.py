"""Tests for the discrete-event scheduler."""

import pytest

from repro.can.scheduler import EventScheduler


class TestScheduling:
    def test_events_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule(0.3, lambda: order.append("c"))
        scheduler.schedule(0.1, lambda: order.append("a"))
        scheduler.schedule(0.2, lambda: order.append("b"))
        scheduler.run()
        assert order == ["a", "b", "c"]
        assert scheduler.now == pytest.approx(0.3)

    def test_equal_times_run_in_scheduling_order(self):
        scheduler = EventScheduler()
        order = []
        for label in "abc":
            scheduler.schedule(0.5, lambda label=label: order.append(label))
        scheduler.run()
        assert order == ["a", "b", "c"]

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule(-0.1, lambda: None)

    def test_schedule_at_in_past_rejected(self):
        scheduler = EventScheduler()
        scheduler.schedule(1.0, lambda: None)
        scheduler.run()
        with pytest.raises(ValueError):
            scheduler.schedule_at(0.5, lambda: None)

    def test_run_until_leaves_later_events_pending(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(0.1, lambda: fired.append(1))
        scheduler.schedule(1.0, lambda: fired.append(2))
        executed = scheduler.run(until=0.5)
        assert executed == 1
        assert fired == [1]
        assert scheduler.pending_events == 1
        assert scheduler.now == pytest.approx(0.5)
        scheduler.run()
        assert fired == [1, 2]

    def test_run_respects_max_events(self):
        scheduler = EventScheduler()
        for _ in range(10):
            scheduler.schedule(0.1, lambda: None)
        assert scheduler.run(max_events=3) == 3
        assert scheduler.processed_events == 3

    def test_step(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule(0.1, lambda: fired.append(1))
        assert scheduler.step() is True
        assert fired == [1]
        assert scheduler.step() is False

    def test_cancellation(self):
        scheduler = EventScheduler()
        fired = []
        handle = scheduler.schedule(0.1, lambda: fired.append(1), label="cancel-me")
        scheduler.schedule(0.2, lambda: fired.append(2))
        handle.cancel()
        assert handle.cancelled
        assert handle.label == "cancel-me"
        scheduler.run()
        assert fired == [2]

    def test_clear(self):
        scheduler = EventScheduler()
        scheduler.schedule(0.1, lambda: None)
        scheduler.clear()
        assert scheduler.run() == 0

    def test_events_scheduled_during_execution_run(self):
        scheduler = EventScheduler()
        fired = []

        def first():
            fired.append("first")
            scheduler.schedule(0.1, lambda: fired.append("second"))

        scheduler.schedule(0.1, first)
        scheduler.run()
        assert fired == ["first", "second"]
        assert scheduler.now == pytest.approx(0.2)


class TestPeriodic:
    def test_periodic_with_count(self):
        scheduler = EventScheduler()
        ticks = []
        scheduler.schedule_periodic(0.1, lambda: ticks.append(scheduler.now), count=3)
        scheduler.run()
        assert len(ticks) == 3
        assert ticks[0] == pytest.approx(0.1)
        assert ticks[-1] == pytest.approx(0.3)

    def test_periodic_bounded_by_until(self):
        scheduler = EventScheduler()
        ticks = []
        scheduler.schedule_periodic(0.1, lambda: ticks.append(scheduler.now))
        scheduler.run(until=0.55)
        assert len(ticks) == 5

    def test_periodic_custom_start_delay(self):
        scheduler = EventScheduler()
        ticks = []
        scheduler.schedule_periodic(
            0.2, lambda: ticks.append(scheduler.now), start_delay=0.0, count=2
        )
        scheduler.run()
        assert ticks[0] == pytest.approx(0.0)
        assert ticks[1] == pytest.approx(0.2)

    def test_periodic_zero_count_is_noop(self):
        scheduler = EventScheduler()
        scheduler.schedule_periodic(0.1, lambda: None, count=0)
        assert scheduler.run() == 0

    def test_invalid_period_rejected(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_periodic(0.0, lambda: None)
