"""Tests for lease/ack queue semantics: ordering, single-flight, expiry."""

import pytest

from repro.api.config import ExperimentConfig
from repro.fleet.resilience import RetryPolicy
from repro.service.queue import JobQueue
from repro.service.store import ServiceStore

from test_service_store import FakeClock


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path, clock):
    with ServiceStore(tmp_path / "svc.db", now=clock) as store:
        yield store


@pytest.fixture()
def queue(store):
    return JobQueue(store, lease_s=10.0)


def submit(store, **overrides):
    values = dict(scenario="mixed_ev_dos", vehicles=5, seed=0)
    priority = overrides.pop("priority", 0)
    max_attempts = overrides.pop("max_attempts", 3)
    values.update(overrides)
    job, _ = store.submit(
        ExperimentConfig(**values), priority=priority, max_attempts=max_attempts
    )
    return job


class TestLease:
    def test_lease_marks_job_and_counts_the_attempt(self, store, queue, clock):
        job = submit(store)
        leased = queue.lease("w0")
        assert leased.id == job.id
        assert leased.state == "leased"
        assert leased.worker == "w0"
        assert leased.attempts == 1
        assert leased.lease_deadline == clock.time + 10.0
        assert leased.started_at == clock.time

    def test_empty_queue_leases_none(self, queue):
        assert queue.lease("w0") is None

    def test_priority_then_submission_order(self, store, queue):
        low = submit(store, seed=1)
        high = submit(store, seed=2, priority=5)
        later = submit(store, seed=3)
        assert queue.lease("w0").id == high.id
        assert queue.lease("w0").id == low.id
        assert queue.lease("w0").id == later.id

    def test_not_before_backoff_respected(self, store, queue, clock):
        job = submit(store)
        store.transition(job.id, "leased")
        store.transition(job.id, "queued", not_before=clock.time + 30.0)
        assert queue.lease("w0") is None
        clock.advance(30.0)
        assert queue.lease("w0").id == job.id

    def test_single_flight_per_config_hash(self, store, queue):
        first = submit(store, seed=7)
        duplicate = submit(store, seed=7)
        distinct = submit(store, seed=8)
        leased = queue.lease("w0")
        assert leased.id == first.id
        # The duplicate's hash is in flight: the next lease must skip it
        # (never two concurrent simulations of one config) and take the
        # distinct config instead.
        assert queue.lease("w1").id == distinct.id
        assert queue.lease("w2") is None
        queue.ack_done(first.id, "w0")
        assert queue.lease("w2").id == duplicate.id

    def test_rejects_nonpositive_lease(self, store):
        with pytest.raises(ValueError, match="lease_s"):
            JobQueue(store, lease_s=0.0)

    def test_renew_extends_the_deadline(self, store, queue, clock):
        job = submit(store)
        queue.lease("w0")
        clock.advance(8.0)
        assert queue.renew(job.id, "w0")
        assert store.job(job.id).lease_deadline == clock.time + 10.0

    def test_renew_refuses_other_workers(self, store, queue):
        job = submit(store)
        queue.lease("w0")
        assert not queue.renew(job.id, "w1")


class TestAcks:
    def test_ack_done_finishes_the_job(self, store, queue, clock):
        job = submit(store)
        queue.lease("w0")
        clock.advance(2.0)
        done = queue.ack_done(job.id, "w0")
        assert done.state == "done"
        assert done.finished_at == clock.time
        assert done.lease_deadline is None

    def test_ack_from_non_leaseholder_is_refused(self, store, queue):
        job = submit(store)
        queue.lease("w0")
        assert queue.ack_done(job.id, "w1") is None
        assert store.job(job.id).state == "leased"

    def test_ack_failed_requeues_with_backoff(self, store, queue, clock):
        job = submit(store)
        queue.lease("w0")
        failed = queue.ack_failed(job.id, "w0", "boom")
        assert failed.state == "queued"
        assert failed.error == "boom"
        assert failed.attempts == 1
        assert failed.not_before > clock.time
        assert failed.worker is None

    def test_backoff_schedule_is_deterministic(self, tmp_path, clock):
        delays = []
        for name in ("a.db", "b.db"):
            with ServiceStore(tmp_path / name, now=clock) as store:
                queue = JobQueue(store, lease_s=10.0)
                job = submit(store)
                queue.lease("w0")
                requeued = queue.ack_failed(job.id, "w0", "boom")
                delays.append(requeued.not_before - clock.time)
        assert delays[0] == delays[1]

    def test_attempts_exhaust_to_terminal_failure(self, store, queue, clock):
        job = submit(store, max_attempts=2)
        for attempt in (1, 2):
            clock.advance(60.0)  # clear any backoff
            leased = queue.lease("w0")
            assert leased is not None and leased.attempts == attempt
            final = queue.ack_failed(job.id, "w0", f"boom {attempt}")
        assert final.state == "failed"
        assert final.error == "boom 2"
        assert final.finished_at == clock.time

    def test_job_max_attempts_tightens_the_policy(self, store, clock):
        queue = JobQueue(store, lease_s=10.0, retry=RetryPolicy(max_attempts=5))
        job = submit(store, max_attempts=1)
        queue.lease("w0")
        assert queue.ack_failed(job.id, "w0", "boom").state == "failed"


class TestExpiry:
    def test_expired_lease_requeues_with_attempt_spent(self, store, queue, clock):
        job = submit(store)
        queue.lease("w0")
        clock.advance(10.0)
        swept = queue.requeue_expired()
        assert [j.id for j in swept] == [job.id]
        assert swept[0].state == "queued"
        assert swept[0].attempts == 1
        assert "lease expired" in swept[0].error
        assert "'w0'" in swept[0].error

    def test_live_leases_are_left_alone(self, store, queue, clock):
        submit(store)
        queue.lease("w0")
        clock.advance(9.0)
        assert queue.requeue_expired() == []

    def test_expiry_exhausts_to_terminal_failure(self, store, clock):
        queue = JobQueue(store, lease_s=10.0)
        job = submit(store, max_attempts=1)
        queue.lease("w0")
        clock.advance(10.0)
        swept = queue.requeue_expired()
        assert swept[0].state == "failed"
        assert store.job(job.id).state == "failed"

    def test_requeued_job_leases_after_backoff(self, store, queue, clock):
        job = submit(store)
        queue.lease("w0")
        clock.advance(10.0)
        queue.requeue_expired()
        clock.advance(60.0)  # past any backoff
        leased = queue.lease("w1")
        assert leased.id == job.id
        assert leased.attempts == 2
        assert leased.worker == "w1"

    def test_depth_reports_per_state_counts(self, store, queue):
        submit(store, seed=1)
        submit(store, seed=2)
        queue.lease("w0")
        depth = queue.depth()
        assert depth["queued"] == 1
        assert depth["leased"] == 1
