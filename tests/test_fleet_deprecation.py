"""The legacy :class:`FleetRunner` surface: every call path warns, and
results stay bit-identical to the :class:`repro.api.FleetSession` layer
it now delegates to."""

import warnings

import pytest

from repro.api import ExperimentConfig, FleetSession
from repro.fleet.runner import FleetRunner
from repro.fleet.scenarios import get_scenario

FLEET = 16
SEED = 42


def _quiet_runner(**kwargs) -> FleetRunner:
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return FleetRunner(**kwargs)


class TestEveryLegacyPathWarns:
    def test_constructor_warns(self):
        with pytest.deprecated_call(match="FleetRunner is deprecated"):
            FleetRunner()

    def test_run_warns(self):
        runner = _quiet_runner()
        with pytest.deprecated_call(match="FleetSession"):
            runner.run("baseline_cruise", 2, seed=1)

    def test_run_specs_warns(self):
        runner = _quiet_runner()
        specs = get_scenario("baseline_cruise").vehicle_specs(2, 1)
        with pytest.deprecated_call(match="FleetSession"):
            runner.run_specs(specs, "baseline_cruise")

    def test_run_many_warns(self):
        runner = _quiet_runner()
        with pytest.deprecated_call(match="FleetSession"):
            runner.run_many(("baseline_cruise",), vehicles_each=2, seed=1)


class TestLegacyResultsAreBitIdentical:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_fingerprint_matches_fleet_session(self, workers):
        config = ExperimentConfig(
            scenario="mixed_ev_dos", vehicles=FLEET, seed=SEED, workers=workers
        )
        with FleetSession(config) as session:
            expected = session.run()
        legacy = _quiet_runner(workers=workers).run("mixed_ev_dos", FLEET, seed=SEED)
        assert legacy.fingerprint() == expected.fingerprint()
        assert legacy.vehicles == expected.vehicles
        assert legacy.enforcement_mix == expected.enforcement_mix
        assert legacy.latency_p99_s == expected.latency_p99_s

    def test_legacy_kwargs_still_steer_the_session(self):
        """The six historical kwargs map onto config fields unchanged."""
        legacy = _quiet_runner(
            workers=1,
            trace_level="full",
            inbox_limit=None,
            reuse_cars=False,
            compile_tables=False,
        ).run("fleet_replay_storm", FLEET, seed=SEED)
        config = ExperimentConfig(
            scenario="fleet_replay_storm",
            vehicles=FLEET,
            seed=SEED,
            trace_level="full",
            inbox_limit=None,
            reuse_cars=False,
            compile_tables=False,
        )
        assert legacy.fingerprint() == FleetSession(config).run().fingerprint()

    def test_run_many_matches_first_vehicle_id_offsets(self):
        legacy = _quiet_runner().run_many(
            ("baseline_cruise", "fuzz_probe"), vehicles_each=4, seed=3
        )
        base = ExperimentConfig(scenario="baseline_cruise", vehicles=4, seed=3)
        with FleetSession(base) as session:
            results = session.run_matrix(
                [
                    {"scenario": "baseline_cruise", "first_vehicle_id": 0},
                    {"scenario": "fuzz_probe", "first_vehicle_id": 4},
                ]
            )
        for (config, result) in results:
            assert legacy[config.scenario].fingerprint() == result.fingerprint()
