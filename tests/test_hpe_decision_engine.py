"""Tests for the HPE decision block, directional filters and the engine."""

import pytest

from repro.can.frame import CANFrame
from repro.can.node import PolicyHook
from repro.hpe.approved_list import ApprovedIdList, IdRange
from repro.hpe.decision_block import Decision, DecisionBlock, DecisionOutcome
from repro.hpe.engine import HardwarePolicyEngine
from repro.hpe.filters import Direction, ReadFilter, WriteFilter
from repro.hpe.tamper import TamperSource


class TestDecisionBlock:
    def test_whitelist_grants_only_listed_ids(self):
        block = DecisionBlock(ApprovedIdList([0x10]))
        assert block.evaluate_id(0x10).granted
        assert not block.evaluate_id(0x20).granted
        assert block.decisions_made == 2
        assert block.grants == 1
        assert block.blocks == 1
        assert block.block_rate == pytest.approx(0.5)

    def test_blacklist_semantics(self):
        block = DecisionBlock(ApprovedIdList([0x10]), default_grant=True)
        assert not block.evaluate_id(0x10).granted
        assert block.evaluate_id(0x20).granted

    def test_decision_carries_reason_and_latency(self):
        block = DecisionBlock(ApprovedIdList([0x10]), latency_s=1e-7)
        decision = block.evaluate(CANFrame(can_id=0x10))
        assert isinstance(decision, Decision)
        assert decision.outcome is DecisionOutcome.GRANT
        assert decision.latency_s == pytest.approx(1e-7)
        assert "approved list" in decision.reason
        assert bool(decision) is True

    def test_latency_accumulates(self):
        block = DecisionBlock(ApprovedIdList([0x10]), latency_s=1e-8)
        for _ in range(10):
            block.evaluate_id(0x10)
        assert block.total_latency_s == pytest.approx(1e-7)

    def test_reset_counters(self):
        block = DecisionBlock(ApprovedIdList([0x10]))
        block.evaluate_id(0x10)
        block.reset_counters()
        assert block.decisions_made == 0
        assert block.total_latency_s == 0.0
        assert block.block_rate == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            DecisionBlock(ApprovedIdList(), latency_s=-1.0)


class TestDirectionalFilters:
    def test_directions(self):
        assert ReadFilter(ApprovedIdList()).direction is Direction.READ
        assert WriteFilter(ApprovedIdList()).direction is Direction.WRITE

    def test_counters(self):
        read_filter = ReadFilter(ApprovedIdList([0x10]))
        assert read_filter.permits(CANFrame(can_id=0x10))
        assert not read_filter.permits(CANFrame(can_id=0x20))
        assert read_filter.decisions_made == 2
        assert read_filter.grants == 1
        assert read_filter.blocks == 1
        assert read_filter.total_latency_s > 0


class TestHardwarePolicyEngine:
    def make_engine(self) -> HardwarePolicyEngine:
        return HardwarePolicyEngine(
            "EV-ECU",
            approved_reads=(0x010, 0x050),
            approved_writes=(0x020,),
            configuration_key=0xABC,
        )

    def test_implements_policy_hook_protocol(self):
        assert isinstance(self.make_engine(), PolicyHook)

    def test_read_and_write_filtering(self):
        engine = self.make_engine()
        assert engine.permit_read(CANFrame(can_id=0x010))
        assert not engine.permit_read(CANFrame(can_id=0x020))
        assert engine.permit_write(CANFrame(can_id=0x020))
        assert not engine.permit_write(CANFrame(can_id=0x010))
        assert engine.decisions_made == 4
        assert engine.frames_blocked == 2

    def test_ranges_supported(self):
        engine = HardwarePolicyEngine(
            "node", read_ranges=(IdRange(0x100, 0x10F),)
        )
        assert engine.permit_read(CANFrame(can_id=0x105))
        assert not engine.permit_read(CANFrame(can_id=0x110))

    def test_authorised_policy_update(self):
        engine = self.make_engine()
        assert engine.update_policy(
            approved_reads=[0x099], approved_writes=[0x098], key=0xABC
        )
        assert engine.permit_read(CANFrame(can_id=0x099))
        assert not engine.permit_read(CANFrame(can_id=0x010))
        assert engine.permit_write(CANFrame(can_id=0x098))
        assert len(engine.tamper_log.succeeded()) == 1
        assert engine.tamper_log.unauthorised_successes() == []

    def test_update_with_wrong_key_rejected(self):
        engine = self.make_engine()
        assert not engine.update_policy(
            approved_reads=[0x099], approved_writes=[], key=0xDEAD
        )
        assert not engine.permit_read(CANFrame(can_id=0x099))
        assert len(engine.tamper_log.rejected()) == 1

    def test_update_from_unauthorised_source_rejected(self):
        engine = self.make_engine()
        assert not engine.update_policy(
            approved_reads=[0x099], approved_writes=[], key=0xABC,
            source=TamperSource.NODE_FIRMWARE,
        )
        assert not engine.permit_read(CANFrame(can_id=0x099))

    def test_firmware_reconfiguration_always_fails_and_is_logged(self):
        engine = self.make_engine()
        assert not engine.attempt_firmware_reconfiguration(
            approved_reads=range(0x000, 0x7FF), approved_writes=range(0x000, 0x7FF)
        )
        assert not engine.permit_read(CANFrame(can_id=0x7F0))
        assert len(engine.tamper_log.rejected()) == 1
        assert engine.tamper_log.rejected()[0].source is TamperSource.NODE_FIRMWARE

    def test_lists_stay_locked_after_update(self):
        engine = self.make_engine()
        engine.update_policy(approved_reads=[0x099], approved_writes=[], key=0xABC)
        with pytest.raises(PermissionError):
            engine._read_list.add(0x123)

    def test_register_write_through_config_port(self):
        engine = self.make_engine()
        assert engine.write_configuration_register(0, 0xFF, key=0xABC) is True
        assert engine.registers.read(0) == 0xFF
        # A wrong key fails and the attempt is logged.
        assert engine.write_configuration_register(1, 0xFF, key=0x0, source="firmware") is False
        assert engine.registers.read(1) == 0
        assert len(engine.registers.denied_accesses()) == 1

    def test_counters_reset(self):
        engine = self.make_engine()
        engine.permit_read(CANFrame(can_id=0x010))
        engine.reset_counters()
        assert engine.decisions_made == 0
        assert engine.total_latency_s == 0.0
