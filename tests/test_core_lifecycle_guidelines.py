"""Tests for the life-cycle model, response comparison and the guideline baseline."""

import pytest

from repro.core.guidelines import Guideline, GuidelineSecurityModel, RemediationPath
from repro.core.lifecycle import (
    STAGE_ORDER,
    LifecycleStage,
    ResponseModel,
    ResponseParameters,
    SecureDevelopmentLifecycle,
)


class TestSecureDevelopmentLifecycle:
    def test_stages_complete_in_order(self):
        lifecycle = SecureDevelopmentLifecycle("connected-car")
        assert lifecycle.current_stage is LifecycleStage.REQUIREMENTS
        lifecycle.complete(LifecycleStage.REQUIREMENTS)
        assert lifecycle.current_stage is LifecycleStage.RISK_ASSESSMENT
        with pytest.raises(ValueError):
            lifecycle.complete(LifecycleStage.DEPLOYMENT)

    def test_complete_through(self):
        lifecycle = SecureDevelopmentLifecycle("connected-car")
        lifecycle.complete_through(LifecycleStage.DEPLOYMENT)
        assert lifecycle.deployed
        assert lifecycle.current_stage is LifecycleStage.MAINTENANCE
        assert lifecycle.completed == list(STAGE_ORDER[:8])

    def test_security_model_bridges_threat_modelling_and_design(self):
        order = list(STAGE_ORDER)
        assert order.index(LifecycleStage.SECURITY_MODEL) > order.index(
            LifecycleStage.THREAT_MODELLING
        )
        assert order.index(LifecycleStage.SECURITY_MODEL) < order.index(
            LifecycleStage.SECURITY_TESTING
        )

    def test_empty_product_name_rejected(self):
        with pytest.raises(ValueError):
            SecureDevelopmentLifecycle(" ")


class TestResponseModel:
    def test_policy_response_is_much_faster_than_redesign(self):
        comparison = ResponseModel(fleet_size=100_000).compare(
            RemediationPath.SOFTWARE_REDESIGN
        )
        assert comparison.policy.response_days < comparison.guideline.response_days
        assert comparison.speedup > 5
        assert comparison.cost_ratio > 2
        assert not comparison.policy.requires_redeployment
        assert comparison.guideline.requires_redeployment

    def test_recall_is_the_most_expensive_path(self):
        model = ResponseModel(fleet_size=100_000)
        comparisons = model.compare_all()
        recall_cost = comparisons[RemediationPath.PRODUCT_RECALL].guideline.total_cost
        software_cost = comparisons[RemediationPath.SOFTWARE_REDESIGN].guideline.total_cost
        assert recall_cost > software_cost
        assert all(c.speedup > 1 for c in comparisons.values())

    def test_policy_cost_scales_gently_with_fleet_size(self):
        small = ResponseModel(fleet_size=1_000).policy_response().total_cost
        large = ResponseModel(fleet_size=1_000_000).policy_response().total_cost
        assert large > small
        # Distribution dominates far less than a recall would.
        recall_large = ResponseModel(fleet_size=1_000_000).guideline_response(
            RemediationPath.PRODUCT_RECALL
        ).total_cost
        assert large < recall_large / 100

    def test_already_covered_costs_only_analysis(self):
        model = ResponseModel()
        estimate = model.guideline_response(RemediationPath.ALREADY_COVERED)
        assert estimate.response_days == model.parameters.threat_analysis_days
        assert not estimate.requires_redeployment

    def test_custom_parameters(self):
        parameters = ResponseParameters(policy_distribution_days=0.5)
        model = ResponseModel(fleet_size=10, parameters=parameters)
        assert model.policy_response().response_days == pytest.approx(
            parameters.threat_analysis_days
            + parameters.policy_derivation_days
            + parameters.policy_testing_days
            + 0.5
        )

    def test_invalid_fleet_size(self):
        with pytest.raises(ValueError):
            ResponseModel(fleet_size=0)

    def test_comparison_rows(self):
        rows = ResponseModel().compare().rows()
        assert len(rows) == 2
        assert rows[0][0] == "policy"
        assert rows[1][0] == "guideline"


class TestGuidelineSecurityModel:
    def make_model(self) -> GuidelineSecurityModel:
        model = GuidelineSecurityModel("baseline")
        model.add(Guideline("G-1", "Limit CAN access", addresses=("T01", "T02")))
        model.add(Guideline("G-2", "Patch the infotainment system", addresses=("T08",)))
        return model

    def test_coverage(self):
        model = self.make_model()
        assert model.covered_threats() == {"T01", "T02", "T08"}
        assert model.coverage(["T01", "T02", "T08", "T16"]) == pytest.approx(0.75)
        assert model.coverage([]) == 1.0
        assert [g.identifier for g in model.guidelines_for("T08")] == ["G-2"]

    def test_duplicate_rejected(self):
        model = self.make_model()
        with pytest.raises(ValueError):
            model.add(Guideline("G-1", "duplicate"))

    def test_deployment_freezes_the_model(self):
        model = self.make_model()
        model.mark_deployed()
        with pytest.raises(RuntimeError):
            model.add(Guideline("G-3", "too late"))

    def test_remediation_paths_after_deployment(self):
        model = self.make_model()
        assert model.remediation_for_new_threat() is RemediationPath.ALREADY_COVERED
        model.mark_deployed()
        assert model.remediation_for_new_threat() is RemediationPath.SOFTWARE_REDESIGN
        assert (
            model.remediation_for_new_threat(requires_hardware_change=True)
            is RemediationPath.HARDWARE_REDESIGN
        )
        assert (
            model.remediation_for_new_threat(recall_required=True)
            is RemediationPath.PRODUCT_RECALL
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            GuidelineSecurityModel(" ")
        with pytest.raises(ValueError):
            Guideline("G-1", " ")
