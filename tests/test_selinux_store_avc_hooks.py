"""Tests for the modular policy store, AVC and enforcement hooks."""

import pytest

from repro.selinux.avc import AccessVectorCache
from repro.selinux.compiler import PermissionStatement, compile_statements
from repro.selinux.contexts import LabelStore
from repro.selinux.hooks import EnforcementMode, SoftwareEnforcementPoint
from repro.selinux.policy_store import ModularPolicyStore, PolicyModule
from repro.selinux.te import AllowRule


def make_module(name="infotainment", version=1, permissions=("read",)) -> PolicyModule:
    return PolicyModule(
        name=name,
        version=version,
        types=("media_t", "bus_t"),
        rules=(
            AllowRule("media_t", "bus_t", "can_bus", frozenset(permissions)),
        ),
    )


class TestModularPolicyStore:
    def test_install_and_compile(self):
        store = ModularPolicyStore()
        store.install(make_module())
        assert store.active_policy().check("media_t", "bus_t", "can_bus", "read")
        assert len(store) == 1
        assert "infotainment" in store

    def test_upgrade_requires_higher_version(self):
        store = ModularPolicyStore()
        store.install(make_module(version=1))
        with pytest.raises(ValueError):
            store.install(make_module(version=1))
        store.install(make_module(version=2, permissions=("read", "write")))
        assert store.module("infotainment").version == 2
        assert store.active_policy().check("media_t", "bus_t", "can_bus", "write")

    def test_remove(self):
        store = ModularPolicyStore()
        store.install(make_module())
        removed = store.remove("infotainment")
        assert removed.name == "infotainment"
        assert not store.active_policy().check("media_t", "bus_t", "can_bus", "read")
        with pytest.raises(KeyError):
            store.remove("infotainment")

    def test_reload_listeners_and_count(self):
        store = ModularPolicyStore()
        events = []
        store.add_reload_listener(lambda: events.append(1))
        store.install(make_module())
        store.remove("infotainment")
        assert len(events) == 2
        assert store.reload_count == 2

    def test_module_validation(self):
        with pytest.raises(ValueError):
            PolicyModule(name=" ", version=1)
        with pytest.raises(ValueError):
            PolicyModule(name="m", version=0)


class TestAccessVectorCache:
    def test_hits_and_misses(self):
        store = ModularPolicyStore()
        store.install(make_module())
        avc = AccessVectorCache(store)
        assert avc.check("media_t", "bus_t", "can_bus", "read")
        assert avc.check("media_t", "bus_t", "can_bus", "read")
        assert avc.misses == 1
        assert avc.hits == 1
        assert avc.hit_rate == pytest.approx(0.5)
        assert avc.size == 1

    def test_flushes_on_policy_reload(self):
        store = ModularPolicyStore()
        store.install(make_module())
        avc = AccessVectorCache(store)
        assert not avc.check("media_t", "bus_t", "can_bus", "write")
        store.install(make_module(version=2, permissions=("read", "write")))
        # The upgraded module now allows write; the stale cache entry must not
        # mask it.
        assert avc.check("media_t", "bus_t", "can_bus", "write")
        assert avc.flushes >= 1

    def test_lru_eviction(self):
        store = ModularPolicyStore()
        store.install(make_module())
        avc = AccessVectorCache(store, capacity=2)
        avc.allowed_permissions("a", "b", "can_bus")
        avc.allowed_permissions("c", "d", "can_bus")
        avc.allowed_permissions("e", "f", "can_bus")
        assert avc.size == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            AccessVectorCache(ModularPolicyStore(), capacity=0)


class TestSoftwareEnforcementPoint:
    def make_point(self, mode=EnforcementMode.ENFORCING) -> SoftwareEnforcementPoint:
        store = ModularPolicyStore()
        store.install(make_module())
        labels = LabelStore()
        labels.label_domain("browser", "media_t")
        labels.label_domain("updater", "updater_t")
        labels.label_object("bus", "bus_t")
        return SoftwareEnforcementPoint(store, labels, mode=mode)

    def test_allowed_operation(self):
        point = self.make_point()
        decision = point.check_operation("browser", "bus", "can_bus", "read")
        assert decision.allowed
        assert decision.enforced
        assert point.denials == 0

    def test_denied_operation_enforcing(self):
        point = self.make_point()
        decision = point.check_operation("browser", "bus", "can_bus", "write")
        assert not decision.allowed
        assert point.denials == 1
        assert point.denial_rate() == pytest.approx(0.5) or point.denial_rate() == 1.0

    def test_permissive_mode_audits_but_allows(self):
        point = self.make_point(mode=EnforcementMode.PERMISSIVE)
        decision = point.check_operation("browser", "bus", "can_bus", "write")
        assert decision.allowed
        assert not decision.enforced
        assert len(point.denial_records()) == 1

    def test_disabled_mode_skips_checks(self):
        point = self.make_point(mode=EnforcementMode.DISABLED)
        decision = point.check_operation("ghost", "bus", "can_bus", "write")
        assert decision.allowed
        assert point.checks_performed == 0
        assert point.audit_log == []

    def test_audit_record_format(self):
        point = self.make_point()
        point.check_operation("browser", "bus", "can_bus", "write", comm="pkgd")
        record = point.denial_records()[0]
        assert "denied" in record.render()
        assert "comm=pkgd" in record.render()
        assert "tclass=can_bus" in record.render()

    def test_unlabelled_subject_raises(self):
        point = self.make_point()
        with pytest.raises(KeyError):
            point.check_operation("ghost", "bus", "can_bus", "read")


class TestCompiler:
    def test_statements_merge_into_rules(self):
        module = compile_statements(
            "m",
            [
                PermissionStatement("a_t", "b_t", "can_bus", frozenset({"read"})),
                PermissionStatement("a_t", "b_t", "can_bus", frozenset({"write"})),
                PermissionStatement("c_t", "b_t", "package", frozenset({"install"})),
            ],
            version=3,
        )
        assert module.version == 3
        assert len(module.rules) == 2
        assert set(module.types) == {"a_t", "b_t", "c_t"}
        merged = [r for r in module.rules if r.tclass == "can_bus"][0]
        assert merged.permissions == {"read", "write"}

    def test_statement_validation(self):
        with pytest.raises(ValueError):
            PermissionStatement("a_t", "b_t", "can_bus", frozenset({"install"}))
        with pytest.raises(ValueError):
            PermissionStatement("a_t", "b_t", "can_bus", frozenset())
