"""Tests for threats, catalogues and risk assessment."""

import pytest

from repro.threat.assets import Asset, AssetRegistry
from repro.threat.dread import DreadScore, RiskLevel
from repro.threat.risk import RiskAssessment, RiskMatrix
from repro.threat.stride import StrideCategory, StrideClassification
from repro.threat.threats import Threat, ThreatCatalog


def make_threat(identifier="T1", asset="EV-ECU", average=None, **kwargs) -> Threat:
    dread = kwargs.pop("dread", DreadScore(8, 5, 4, 6, 4))
    return Threat(
        identifier=identifier,
        description=kwargs.pop("description", "Spoofed disable command"),
        asset=asset,
        entry_points=kwargs.pop("entry_points", ("Sensors",)),
        stride=kwargs.pop("stride", StrideClassification.parse("STD")),
        dread=dread,
        **kwargs,
    )


class TestThreat:
    def test_basic_properties(self):
        threat = make_threat()
        assert threat.average_score == pytest.approx(5.4)
        assert threat.risk_level is RiskLevel.MEDIUM
        assert threat.involves(StrideCategory.SPOOFING)
        assert not threat.involves(StrideCategory.REPUDIATION)
        assert threat.uses_entry_point("Sensors")

    def test_mode_applicability(self):
        threat = make_threat(applicable_modes=("normal",))
        assert threat.applies_in_mode("normal")
        assert not threat.applies_in_mode("fail-safe")
        unrestricted = make_threat(identifier="T2")
        assert unrestricted.applies_in_mode("anything")

    def test_validation(self):
        with pytest.raises(ValueError):
            make_threat(identifier=" ")
        with pytest.raises(ValueError):
            make_threat(asset=" ")
        with pytest.raises(ValueError):
            make_threat(entry_points=())


class TestThreatCatalog:
    def make_catalog(self) -> ThreatCatalog:
        catalog = ThreatCatalog()
        catalog.add(make_threat("T1", asset="EV-ECU", dread=DreadScore(8, 5, 4, 6, 4)))
        catalog.add(
            make_threat(
                "T2", asset="Engine", dread=DreadScore(6, 5, 4, 7, 5),
                stride=StrideClassification.parse("TD"), entry_points=("Sensors", "EV-ECU"),
            )
        )
        catalog.add(
            make_threat(
                "T3", asset="EV-ECU", dread=DreadScore(9, 8, 8, 9, 8),
                stride=StrideClassification.parse("E"), applicable_modes=("fail-safe",),
            )
        )
        return catalog

    def test_duplicate_identifier_rejected(self):
        catalog = self.make_catalog()
        with pytest.raises(ValueError):
            catalog.add(make_threat("T1"))

    def test_lookup_and_membership(self):
        catalog = self.make_catalog()
        assert catalog.get("T2").asset == "Engine"
        assert "T3" in catalog
        assert len(catalog) == 3
        with pytest.raises(KeyError):
            catalog.get("T9")

    def test_against_and_via(self):
        catalog = self.make_catalog()
        assert [t.identifier for t in catalog.against("EV-ECU")] == ["T1", "T3"]
        assert {t.identifier for t in catalog.via("Sensors")} == {"T1", "T2", "T3"}

    def test_involving(self):
        catalog = self.make_catalog()
        assert {t.identifier for t in catalog.involving(StrideCategory.TAMPERING)} == {
            "T1", "T2",
        }

    def test_in_mode(self):
        catalog = self.make_catalog()
        assert {t.identifier for t in catalog.in_mode("normal")} == {"T1", "T2"}
        assert {t.identifier for t in catalog.in_mode("fail-safe")} == {"T1", "T2", "T3"}

    def test_prioritised_orders_by_average_descending(self):
        prioritised = self.make_catalog().prioritised()
        averages = [t.average_score for t in prioritised]
        assert averages == sorted(averages, reverse=True)
        assert prioritised[0].identifier == "T3"

    def test_at_level(self):
        catalog = self.make_catalog()
        assert {t.identifier for t in catalog.at_level(RiskLevel.CRITICAL)} == {"T3"}

    def test_assets_and_entry_points_orderings(self):
        catalog = self.make_catalog()
        assert catalog.assets() == ["EV-ECU", "Engine"]
        assert catalog.entry_points() == ["Sensors", "EV-ECU"]

    def test_stride_histogram(self):
        histogram = self.make_catalog().stride_histogram()
        assert histogram[StrideCategory.SPOOFING] == 1
        assert histogram[StrideCategory.TAMPERING] == 2
        assert histogram[StrideCategory.ELEVATION_OF_PRIVILEGE] == 1

    def test_mean_dread_average(self):
        catalog = self.make_catalog()
        expected = (5.4 + 5.4 + 8.4) / 3
        assert catalog.mean_dread_average() == pytest.approx(expected)
        assert ThreatCatalog().mean_dread_average() == 0.0

    def test_filter(self):
        catalog = self.make_catalog()
        high_damage = catalog.filter(lambda t: t.dread.damage >= 8)
        assert {t.identifier for t in high_damage} == {"T1", "T3"}


class TestRiskMatrix:
    def test_total_and_bands(self):
        catalog = ThreatCatalog(
            [
                make_threat("T1", dread=DreadScore(9, 9, 9, 9, 9)),
                make_threat("T2", dread=DreadScore(1, 1, 1, 1, 1)),
            ]
        )
        matrix = RiskMatrix(catalog)
        assert matrix.total_threats() == 2
        assert matrix.cell("high", "high").threats == ("T1",)
        assert matrix.cell("low", "low").threats == ("T2",)

    def test_hotspots(self):
        catalog = ThreatCatalog([make_threat("T1", dread=DreadScore(9, 9, 9, 9, 9))])
        hotspots = RiskMatrix(catalog).hotspots()
        assert len(hotspots) == 1

    def test_unknown_band_rejected(self):
        matrix = RiskMatrix(ThreatCatalog())
        with pytest.raises(KeyError):
            matrix.cell("extreme", "low")


class TestRiskAssessment:
    def make_assessment(self) -> RiskAssessment:
        catalog = ThreatCatalog(
            [
                make_threat("T1", asset="EV-ECU", dread=DreadScore(8, 5, 4, 6, 4)),
                make_threat("T2", asset="EV-ECU", dread=DreadScore(5, 5, 5, 7, 6)),
                make_threat("T3", asset="Engine", dread=DreadScore(6, 5, 4, 7, 5)),
            ]
        )
        assets = AssetRegistry([Asset("EV-ECU"), Asset("Engine"), Asset("Sensors")])
        assets.add_dependency("EV-ECU", "Sensors")
        assets.add_dependency("Engine", "Sensors")
        return RiskAssessment(catalog, assets)

    def test_per_asset_summary(self):
        summary = self.make_assessment().per_asset_summary()
        assert summary["EV-ECU"].threat_count == 2
        assert summary["EV-ECU"].worst_case.damage == 8
        assert summary["Engine"].threat_count == 1

    def test_remediation_order(self):
        ordered = self.make_assessment().remediation_order()
        averages = [t.average_score for t in ordered]
        assert averages == sorted(averages, reverse=True)

    def test_above_threshold(self):
        assessment = self.make_assessment()
        assert {t.identifier for t in assessment.above_threshold(5.5)} == {"T2"}

    def test_residual_risk_decreases_with_mitigation(self):
        assessment = self.make_assessment()
        nothing = assessment.residual_risk([])
        partial = assessment.residual_risk(["T1"])
        everything = assessment.residual_risk(["T1", "T2", "T3"])
        assert nothing > partial > everything == 0.0

    def test_coverage_by_level(self):
        assessment = self.make_assessment()
        coverage = assessment.coverage_by_level(["T1", "T3"])
        assert coverage[RiskLevel.MEDIUM] == pytest.approx(2 / 3)

    def test_indirect_exposure_requires_registry(self):
        catalog = ThreatCatalog([make_threat("T1", asset="Sensors")])
        with pytest.raises(ValueError):
            RiskAssessment(catalog).indirect_exposure("EV-ECU")

    def test_indirect_exposure(self):
        catalog = ThreatCatalog([make_threat("T1", asset="Sensors")])
        assets = AssetRegistry([Asset("EV-ECU"), Asset("Sensors")])
        assets.add_dependency("EV-ECU", "Sensors")
        exposure = RiskAssessment(catalog, assets).indirect_exposure("EV-ECU")
        assert [t.identifier for t in exposure] == ["T1"]
