"""Tests for the ``python -m repro`` command line (in-process)."""

import json

import pytest

from repro.api import ExperimentConfig, FleetSession
from repro.api.cli import main


def run_cli(*argv):
    return main(list(argv))


class TestScenarioCommands:
    def test_list_names_every_registered_scenario(self, capsys):
        assert run_cli("scenarios", "list") == 0
        out = capsys.readouterr().out
        for name in ("baseline_cruise", "fleet_replay_storm", "mixed_ev_dos"):
            assert name in out

    def test_list_json_parses(self, capsys):
        assert run_cli("scenarios", "list", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert any(entry["name"] == "fleet_replay_storm" for entry in payload)

    def test_show_prints_mix_and_parameters(self, capsys):
        assert run_cli("scenarios", "show", "fleet_replay_storm") == 0
        out = capsys.readouterr().out
        assert "hpe+selinux" in out
        assert "replay_messages" in out

    def test_show_json_round_trips_the_mix(self, capsys):
        assert run_cli("scenarios", "show", "mixed_ev_dos", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["name"] == "mixed_ev_dos"
        assert 0 < payload["mix"]["unprotected"] < 1

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert run_cli("scenarios", "show", "nope") == 2
        assert "no registered scenario" in capsys.readouterr().err


class TestConfigCommands:
    def test_presets_lists_the_three_presets(self, capsys):
        assert run_cli("config", "presets") == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {"debug", "throughput", "faithful"}
        assert payload["faithful"]["compile_tables"] is False

    def test_show_resolves_flags_to_a_full_config(self, capsys):
        assert (
            run_cli(
                "config", "show",
                "--preset", "throughput",
                "--scenario", "mixed_ev_dos",
                "--vehicles", "500",
                "--workers", "2",
            )
            == 0
        )
        config = ExperimentConfig.from_json(capsys.readouterr().out)
        assert config == ExperimentConfig.throughput("mixed_ev_dos", 500, workers=2)

    def test_show_requires_scenario_and_vehicles(self, capsys):
        assert run_cli("config", "show", "--scenario", "x") == 2
        assert "--vehicles" in capsys.readouterr().err


class TestFleetRun:
    def test_json_report_matches_a_direct_api_run(self, tmp_path, capsys):
        report = tmp_path / "run.json"
        assert (
            run_cli(
                "fleet", "run",
                "--scenario", "mixed_ev_dos",
                "--vehicles", "12",
                "--seed", "42",
                "--json", str(report),
            )
            == 0
        )
        out = capsys.readouterr().out
        payload = json.loads(report.read_text())
        config = ExperimentConfig.from_dict(payload["config"])
        direct = FleetSession(config).run()
        assert payload["fingerprint"] == direct.fingerprint()
        assert payload["summary"]["vehicles"] == 12
        assert direct.fingerprint() in out  # printed for the record

    def test_config_file_replays_a_saved_experiment(self, tmp_path, capsys):
        config = ExperimentConfig(scenario="baseline_cruise", vehicles=6, seed=3)
        saved = tmp_path / "config.json"
        saved.write_text(config.to_json())
        report = tmp_path / "replay.json"
        assert run_cli("fleet", "run", "--config", str(saved), "--json", str(report)) == 0
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert ExperimentConfig.from_dict(payload["config"]) == config
        assert payload["fingerprint"] == FleetSession(config).run().fingerprint()

    def test_config_file_accepts_a_json_report_directly(self, tmp_path, capsys):
        """The --json report itself replays: its config block is unwrapped."""
        first = tmp_path / "report.json"
        assert (
            run_cli(
                "fleet", "run", "--scenario", "baseline_cruise",
                "--vehicles", "5", "--seed", "4", "--json", str(first),
            )
            == 0
        )
        second = tmp_path / "replay.json"
        assert run_cli("fleet", "run", "--config", str(first), "--json", str(second)) == 0
        capsys.readouterr()
        a = json.loads(first.read_text())
        b = json.loads(second.read_text())
        assert a["config"] == b["config"]
        assert a["fingerprint"] == b["fingerprint"]

    def test_preset_with_config_file_is_rejected(self, tmp_path, capsys):
        saved = tmp_path / "config.json"
        saved.write_text(ExperimentConfig(scenario="baseline_cruise", vehicles=6).to_json())
        assert (
            run_cli(
                "fleet", "run", "--config", str(saved), "--preset", "throughput"
            )
            == 2
        )
        assert "--preset cannot be combined with --config" in capsys.readouterr().err

    def test_flags_override_the_config_file(self, tmp_path, capsys):
        saved = tmp_path / "config.json"
        saved.write_text(ExperimentConfig(scenario="baseline_cruise", vehicles=6).to_json())
        report = tmp_path / "run.json"
        assert (
            run_cli(
                "fleet", "run", "--config", str(saved),
                "--vehicles", "3", "--seed", "8",
                "--json", str(report),
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["config"]["vehicles"] == 3
        assert payload["config"]["seed"] == 8

    def test_enforcement_override_reaches_the_fleet(self, tmp_path, capsys):
        report = tmp_path / "run.json"
        assert (
            run_cli(
                "fleet", "run",
                "--scenario", "mixed_ev_dos",
                "--vehicles", "5",
                "--enforcement", "unprotected",
                "--json", str(report),
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["config"]["enforcement"] == "unprotected"

    def test_progress_lines_stream(self, capsys):
        assert (
            run_cli(
                "fleet", "run",
                "--scenario", "baseline_cruise",
                "--vehicles", "6",
                "--progress", "2",
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "... 2/6 vehicles" in out
        assert "... 6/6 vehicles" in out

    def test_param_overrides_are_recorded(self, tmp_path, capsys):
        report = tmp_path / "run.json"
        assert (
            run_cli(
                "fleet", "run",
                "--scenario", "baseline_cruise",
                "--vehicles", "2",
                "--param", "accel_range=[10, 20]",
                "--param", "note=quick",
                "--json", str(report),
            )
            == 0
        )
        capsys.readouterr()
        payload = json.loads(report.read_text())
        assert payload["config"]["scenario_parameters"] == {
            "accel_range": [10, 20],
            "note": "quick",
        }

    def test_missing_required_flags_fail_cleanly(self, capsys):
        assert run_cli("fleet", "run", "--scenario", "baseline_cruise") == 2
        assert "--vehicles" in capsys.readouterr().err

    def test_unknown_scenario_fails_cleanly(self, capsys):
        assert run_cli("fleet", "run", "--scenario", "nope", "--vehicles", "2") == 2
        assert "no registered scenario" in capsys.readouterr().err

    def test_bad_enforcement_label_fails_cleanly(self, capsys):
        assert (
            run_cli(
                "fleet", "run", "--scenario", "baseline_cruise",
                "--vehicles", "2", "--enforcement", "tinfoil",
            )
            == 2
        )
        assert "enforcement label" in capsys.readouterr().err

    def test_bad_param_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit):
            run_cli(
                "fleet", "run", "--scenario", "baseline_cruise",
                "--vehicles", "2", "--param", "novalue",
            )
