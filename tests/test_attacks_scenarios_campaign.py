"""Tests for the Table I scenarios and the attack-campaign machinery.

The campaign-level tests are the integration heart of the reproduction:
they assert the *shape* of the paper's argument -- every Table I attack
succeeds against the unprotected baseline, and policy enforcement
(hardware policy engines plus SELinux) mitigates nearly all of them.
"""

import pytest

from repro.attacks.campaign import AttackCampaign
from repro.attacks.scenarios import all_scenarios, scenario_by_threat_id
from repro.casestudy.connected_car import TABLE1_ROWS
from repro.core.enforcement import EnforcementConfig


class TestScenarioDefinitions:
    def test_sixteen_scenarios_matching_table1(self):
        scenarios = all_scenarios()
        assert len(scenarios) == 16
        assert [s.threat_id for s in scenarios] == [r.threat_id for r in TABLE1_ROWS]

    def test_assets_match_table1(self):
        rows = {r.threat_id: r for r in TABLE1_ROWS}
        for scenario in all_scenarios():
            assert rows[scenario.threat_id].asset.startswith(
                scenario.target_asset.split(" ")[0]
            )

    def test_lookup_by_id(self):
        assert scenario_by_threat_id("T05").target_asset == "EPS"
        with pytest.raises(KeyError):
            scenario_by_threat_id("T99")


class TestIndividualScenarios:
    @pytest.mark.parametrize("threat_id", [r.threat_id for r in TABLE1_ROWS])
    def test_every_attack_succeeds_without_enforcement(self, builder, threat_id):
        scenario = scenario_by_threat_id(threat_id)
        outcome = scenario.execute(builder.build_car(None))
        assert outcome.objective_achieved, (
            f"{threat_id} should succeed against the unprotected baseline: "
            f"{outcome.detail}"
        )

    @pytest.mark.parametrize(
        "threat_id",
        ["T01", "T02", "T04", "T05", "T06", "T07", "T09", "T10", "T11", "T13", "T14",
         "T15", "T16"],
    )
    def test_hpe_blocks_can_level_attacks(self, builder, threat_id):
        scenario = scenario_by_threat_id(threat_id)
        outcome = scenario.execute(builder.build_car(EnforcementConfig.hardware_only()))
        assert outcome.mitigated, f"{threat_id} should be blocked by the HPE: {outcome.detail}"

    def test_t08_needs_software_policy(self, builder):
        scenario = scenario_by_threat_id("T08")
        hpe_only = scenario.execute(builder.build_car(EnforcementConfig.hardware_only()))
        with_selinux = scenario.execute(builder.build_car(EnforcementConfig.full()))
        assert not hpe_only.mitigated
        assert with_selinux.mitigated

    def test_t12_is_accepted_residual_risk(self, builder):
        # Forged status values from a legitimate producer cannot be stopped by
        # ID-based filtering; the paper rates this row lowest (DREAD 4.6).
        outcome = scenario_by_threat_id("T12").execute(
            builder.build_car(EnforcementConfig.full())
        )
        assert not outcome.mitigated

    def test_outcomes_record_blocked_frames(self, builder):
        outcome = scenario_by_threat_id("T01").execute(
            builder.build_car(EnforcementConfig.full())
        )
        assert outcome.frames_blocked > 0
        assert outcome.mitigated


class TestCampaign:
    def test_unprotected_campaign_all_attacks_succeed(self, builder):
        result = AttackCampaign(
            builder.factory(None), configuration_name="unprotected"
        ).run()
        assert result.total == 16
        assert result.attack_success_rate == 1.0
        assert result.mitigated == []

    def test_full_enforcement_mitigates_nearly_everything(self, builder):
        result = AttackCampaign(
            builder.factory(EnforcementConfig.full()), configuration_name="full"
        ).run()
        assert result.mitigation_rate >= 14 / 16
        assert result.succeeded_ids() == ["T12"]
        assert result.frames_blocked > 0

    def test_enforcement_ordering_matches_paper_argument(self, builder):
        """unprotected < selinux-only < hpe-only <= full, in mitigation terms."""
        rates = {}
        for name, config in (
            ("unprotected", None),
            ("selinux-only", EnforcementConfig.software_only()),
            ("hpe-only", EnforcementConfig.hardware_only()),
            ("full", EnforcementConfig.full()),
        ):
            rates[name] = AttackCampaign(
                builder.factory(config), configuration_name=name
            ).run().mitigation_rate
        assert rates["unprotected"] == 0.0
        assert rates["unprotected"] < rates["selinux-only"] < rates["hpe-only"]
        assert rates["hpe-only"] <= rates["full"]
        assert rates["full"] >= 0.9

    def test_outcome_lookup_and_partial_campaign(self, builder):
        campaign = AttackCampaign(
            builder.factory(EnforcementConfig.full()),
            scenarios=[scenario_by_threat_id("T01"), scenario_by_threat_id("T05")],
            configuration_name="subset",
        )
        result = campaign.run()
        assert result.total == 2
        assert result.outcome_for("T01").mitigated
        with pytest.raises(KeyError):
            result.outcome_for("T16")
        single = campaign.run_single("T05")
        assert single.mitigated
        with pytest.raises(KeyError):
            campaign.run_single("T16")


class TestCampaignSeededRandomness:
    """The campaign's explicit RNG threading (no module-level randomness)."""

    def test_scenario_seed_is_stable_and_distinct(self, builder):
        campaign = AttackCampaign(builder.factory(), seed=5)
        assert campaign.scenario_seed("T01") == campaign.scenario_seed("T01")
        assert campaign.scenario_seed("T01") != campaign.scenario_seed("T02")
        other = AttackCampaign(builder.factory(), seed=6)
        assert campaign.scenario_seed("T01") != other.scenario_seed("T01")

    def test_shuffled_run_is_reproducible_and_order_independent(self, builder):
        scenarios = all_scenarios()[:4]
        plain = AttackCampaign(
            builder.factory(EnforcementConfig.full()), scenarios, seed=9
        ).run()
        shuffled = AttackCampaign(
            builder.factory(EnforcementConfig.full()), scenarios, seed=9
        ).run(shuffle=True)
        shuffled_again = AttackCampaign(
            builder.factory(EnforcementConfig.full()), scenarios, seed=9
        ).run(shuffle=True)
        # Same per-threat outcomes regardless of execution order...
        assert {r.threat_id: r.mitigated for r in plain.records} == {
            r.threat_id: r.mitigated for r in shuffled.records
        }
        # ...and the shuffled order itself is seed-reproducible.
        assert [r.threat_id for r in shuffled.records] == [
            r.threat_id for r in shuffled_again.records
        ]

    def test_injected_rng_is_used_for_shuffling(self, builder):
        import random

        scenarios = all_scenarios()[:4]
        campaign = AttackCampaign(
            builder.factory(), scenarios, rng=random.Random(1234)
        )
        expected = list(scenarios)
        random.Random(1234).shuffle(expected)
        result = campaign.run(shuffle=True)
        assert [r.threat_id for r in result.records] == [s.threat_id for s in expected]
