"""Tests for fleet outcome aggregation and the determinism fingerprint."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet.results import (
    FleetAggregator,
    FleetResult,
    StreamingFleetAggregator,
    VehicleOutcome,
)


def make_outcome(vehicle_id: int, **overrides) -> VehicleOutcome:
    values = dict(
        vehicle_id=vehicle_id,
        scenario="test",
        enforcement="hpe+selinux",
        simulated_seconds=0.3,
        frames_transmitted=100,
        frames_delivered=80,
        frames_blocked=25,
        hpe_decisions=500,
        policy_pushes=9,
        attacks_attempted=2,
        attacks_mitigated=2,
        mean_decision_latency_s=4e-8,
        healthy=True,
        wall_seconds=0.01,
    )
    values.update(overrides)
    return VehicleOutcome(**values)


class TestAggregation:
    def test_sums_and_rates(self):
        aggregator = FleetAggregator("test")
        aggregator.add(make_outcome(0))
        aggregator.add(make_outcome(1, frames_blocked=75, attacks_mitigated=1, healthy=False))
        result = aggregator.result(wall_seconds=2.0)
        assert result.vehicles == 2
        assert result.frames_transmitted == 200
        assert result.frames_blocked == 100
        assert result.frame_block_rate == pytest.approx(100 / 300)
        assert result.attacks_attempted == 4
        assert result.attack_mitigation_rate == pytest.approx(3 / 4)
        assert result.unhealthy_vehicles == 1
        assert result.frames_per_second == pytest.approx(100.0)
        assert result.vehicles_per_second == pytest.approx(1.0)
        assert result.enforcement_mix == {"hpe+selinux": 2}

    def test_empty_result_has_zero_rates(self):
        result = FleetAggregator("test").result()
        assert result.vehicles == 0
        assert result.frame_block_rate == 0.0
        assert result.attack_mitigation_rate == 0.0
        assert result.frames_per_second == 0.0
        assert result.latency_p99_s == 0.0

    def test_latency_percentiles_over_vehicles(self):
        aggregator = FleetAggregator("test")
        for i in range(100):
            aggregator.add(make_outcome(i, mean_decision_latency_s=float(i)))
        result = aggregator.result()
        assert result.latency_p50_s == pytest.approx(50.0)
        assert result.latency_p95_s == pytest.approx(94.0)
        assert result.latency_p99_s == pytest.approx(98.0)


class TestStreamingAggregator:
    def test_matches_the_batch_aggregator_bit_for_bit(self):
        outcomes = [
            make_outcome(i, frames_blocked=i * 3, mean_decision_latency_s=i * 1e-8)
            for i in range(25)
        ]
        batch = FleetAggregator("test")
        stream = StreamingFleetAggregator("test")
        for outcome in outcomes:
            batch.add(outcome)
            stream.add(outcome)
        batch_result = batch.result(wall_seconds=1.5)
        stream_result = stream.result(wall_seconds=1.5)
        assert stream_result.fingerprint() == batch_result.fingerprint()
        assert stream_result.frames_blocked == batch_result.frames_blocked
        assert stream_result.latency_p95_s == batch_result.latency_p95_s
        assert stream_result.enforcement_mix == batch_result.enforcement_mix
        assert stream_result.summary() == batch_result.summary()

    def test_rejects_out_of_order_vehicles(self):
        stream = StreamingFleetAggregator("test")
        stream.add(make_outcome(5))
        stream.add(make_outcome(5))  # equal ids are fine
        with pytest.raises(ValueError, match="vehicle-id order"):
            stream.add(make_outcome(4))

    def test_refuses_adds_after_finalisation(self):
        stream = StreamingFleetAggregator("test")
        stream.add(make_outcome(0))
        stream.result()
        with pytest.raises(RuntimeError, match="finalised"):
            stream.add(make_outcome(1))

    def test_count_tracks_folded_outcomes(self):
        stream = StreamingFleetAggregator("test")
        assert stream.count == 0
        stream.add(make_outcome(0))
        stream.add(make_outcome(1))
        assert stream.count == 2


class TestFingerprint:
    def test_arrival_order_does_not_matter(self):
        outcomes = [make_outcome(i, frames_transmitted=100 + i) for i in range(10)]
        forward, backward = FleetAggregator("test"), FleetAggregator("test")
        forward.extend(outcomes)
        backward.extend(list(reversed(outcomes)))
        assert forward.result().fingerprint() == backward.result().fingerprint()
        assert forward.result().frames_transmitted == backward.result().frames_transmitted

    def test_any_deterministic_field_changes_the_fingerprint(self):
        base = FleetAggregator("test")
        base.add(make_outcome(0))
        changed = FleetAggregator("test")
        changed.add(make_outcome(0, frames_blocked=26))
        assert base.result().fingerprint() != changed.result().fingerprint()

    def test_wall_seconds_is_excluded(self):
        fast, slow = FleetAggregator("test"), FleetAggregator("test")
        fast.add(make_outcome(0, wall_seconds=0.001))
        slow.add(make_outcome(0, wall_seconds=9.9))
        assert fast.result(1.0).fingerprint() == slow.result(2.0).fingerprint()

    def test_summary_carries_truncated_fingerprint(self):
        aggregator = FleetAggregator("test")
        aggregator.add(make_outcome(0))
        result = aggregator.result()
        assert result.summary()["fingerprint"] == result.fingerprint()[:16]


#: Exact-value float strategy: any finite double (including awkward
#: shortest-repr cases) must survive the JSON wire bit for bit.
_floats = st.floats(allow_nan=False, allow_infinity=False, width=64)


class TestVehicleOutcomeRoundTrip:
    def test_dict_round_trip_is_exact(self):
        outcome = make_outcome(3, mean_decision_latency_s=1 / 3, wall_seconds=0.1 + 0.2)
        rebuilt = VehicleOutcome.from_dict(json.loads(json.dumps(outcome.to_dict())))
        assert rebuilt == outcome
        assert rebuilt.deterministic_tuple() == outcome.deterministic_tuple()

    def test_unknown_keys_rejected(self):
        data = make_outcome(0).to_dict()
        data["frames_dropped"] = 1
        with pytest.raises(ValueError, match="frames_dropped"):
            VehicleOutcome.from_dict(data)

    def test_missing_keys_rejected(self):
        data = make_outcome(0).to_dict()
        del data["healthy"]
        with pytest.raises(ValueError, match="healthy"):
            VehicleOutcome.from_dict(data)

    @settings(max_examples=60, deadline=None)
    @given(
        simulated=_floats,
        latency=_floats,
        wall=_floats,
        frames=st.integers(min_value=0, max_value=2**53),
        healthy=st.booleans(),
    )
    def test_property_json_round_trip(self, simulated, latency, wall, frames, healthy):
        outcome = make_outcome(
            1,
            simulated_seconds=simulated,
            mean_decision_latency_s=latency,
            wall_seconds=wall,
            frames_transmitted=frames,
            healthy=healthy,
        )
        rebuilt = VehicleOutcome.from_dict(json.loads(json.dumps(outcome.to_dict())))
        assert rebuilt == outcome


class TestFleetResultRoundTrip:
    def _result(self, count: int = 9) -> FleetResult:
        aggregator = FleetAggregator("test")
        for i in range(count):
            aggregator.add(
                make_outcome(
                    i,
                    frames_blocked=i * 3,
                    mean_decision_latency_s=(i + 1) / 7,
                    healthy=bool(i % 2),
                )
            )
        return aggregator.result(wall_seconds=1 / 3)

    def test_dict_round_trip_is_exact(self):
        result = self._result()
        rebuilt = FleetResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert rebuilt.to_dict() == result.to_dict()

    def test_fingerprint_preserved_verbatim(self):
        result = self._result()
        rebuilt = FleetResult.from_dict(result.to_dict())
        assert rebuilt.fingerprint() == result.fingerprint()
        assert len(rebuilt.fingerprint()) == 64

    def test_floats_are_exact_not_approximate(self):
        result = self._result()
        rebuilt = FleetResult.from_dict(json.loads(json.dumps(result.to_dict())))
        for name in (
            "simulated_vehicle_seconds",
            "latency_p50_s",
            "latency_p95_s",
            "latency_p99_s",
            "wall_seconds",
        ):
            assert getattr(rebuilt, name) == getattr(result, name), name

    def test_enforcement_mix_round_trips_as_plain_dict(self):
        result = self._result()
        data = json.loads(json.dumps(result.to_dict()))
        assert isinstance(data["enforcement_mix"], dict)
        assert FleetResult.from_dict(data).enforcement_mix == result.enforcement_mix

    def test_unknown_keys_rejected(self):
        data = self._result().to_dict()
        data["vehicels"] = 5
        with pytest.raises(ValueError, match="vehicels"):
            FleetResult.from_dict(data)

    def test_missing_fingerprint_rejected(self):
        data = self._result().to_dict()
        del data["fingerprint"]
        with pytest.raises(ValueError, match="fingerprint"):
            FleetResult.from_dict(data)

    @settings(max_examples=40, deadline=None)
    @given(
        latencies=st.lists(_floats, min_size=1, max_size=20),
        wall=_floats,
    )
    def test_property_json_round_trip(self, latencies, wall):
        aggregator = FleetAggregator("test")
        for i, latency in enumerate(latencies):
            aggregator.add(make_outcome(i, mean_decision_latency_s=latency))
        result = aggregator.result(wall_seconds=wall)
        rebuilt = FleetResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert rebuilt.fingerprint() == result.fingerprint()
        assert rebuilt.to_dict() == result.to_dict()
