"""Tests for CAN frames and message definitions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.can.errors import InvalidFrameError
from repro.can.frame import (
    MAX_EXTENDED_ID,
    MAX_STANDARD_ID,
    CANFrame,
    FrameKind,
    MessageDefinition,
)


class TestCANFrame:
    def test_basic_frame(self):
        frame = CANFrame(can_id=0x123, data=b"\x01\x02")
        assert frame.dlc == 2
        assert frame.priority == 0x123
        assert frame.kind is FrameKind.DATA

    def test_standard_id_bounds(self):
        CANFrame(can_id=MAX_STANDARD_ID)
        with pytest.raises(InvalidFrameError):
            CANFrame(can_id=MAX_STANDARD_ID + 1)

    def test_extended_id_bounds(self):
        CANFrame(can_id=MAX_EXTENDED_ID, extended=True)
        with pytest.raises(InvalidFrameError):
            CANFrame(can_id=MAX_EXTENDED_ID + 1, extended=True)

    def test_payload_limit(self):
        CANFrame(can_id=1, data=bytes(8))
        with pytest.raises(InvalidFrameError):
            CANFrame(can_id=1, data=bytes(9))

    def test_payload_type_checked(self):
        with pytest.raises(InvalidFrameError):
            CANFrame(can_id=1, data="not bytes")

    def test_remote_frame_has_no_payload(self):
        CANFrame(can_id=1, kind=FrameKind.REMOTE)
        with pytest.raises(InvalidFrameError):
            CANFrame(can_id=1, kind=FrameKind.REMOTE, data=b"\x01")

    def test_error_frame_bit_length(self):
        assert CANFrame(can_id=0, kind=FrameKind.ERROR).bit_length == 20

    def test_arbitration_prefers_lower_id(self):
        high_priority = CANFrame(can_id=0x010)
        low_priority = CANFrame(can_id=0x700)
        assert high_priority.arbitrates_before(low_priority)
        assert not low_priority.arbitrates_before(high_priority)

    def test_transmission_time_scales_with_bitrate(self):
        frame = CANFrame(can_id=1, data=bytes(8))
        assert frame.transmission_time(500_000) == pytest.approx(frame.bit_length / 500_000)
        assert frame.transmission_time(125_000) > frame.transmission_time(500_000)

    def test_transmission_time_rejects_bad_bitrate(self):
        with pytest.raises(ValueError):
            CANFrame(can_id=1).transmission_time(0)

    def test_with_source_and_with_data(self):
        frame = CANFrame(can_id=0x20, data=b"\x01")
        tagged = frame.with_source("EV-ECU")
        assert tagged.source == "EV-ECU"
        assert tagged.can_id == frame.can_id
        changed = tagged.with_data(b"\x02\x03")
        assert changed.data == b"\x02\x03"
        assert changed.source == "EV-ECU"

    @given(st.integers(min_value=0, max_value=MAX_STANDARD_ID),
           st.binary(max_size=8))
    def test_bit_length_monotone_in_payload(self, can_id, data):
        frame = CANFrame(can_id=can_id, data=data)
        empty = CANFrame(can_id=can_id)
        assert frame.bit_length >= empty.bit_length
        assert frame.bit_length >= 44  # at least the control-field overhead

    @given(st.integers(min_value=0, max_value=MAX_STANDARD_ID), st.binary(max_size=8))
    def test_frames_are_value_objects(self, can_id, data):
        assert CANFrame(can_id=can_id, data=data) == CANFrame(can_id=can_id, data=data)


class TestMessageDefinition:
    def test_frame_instantiation(self):
        definition = MessageDefinition(
            can_id=0x20, name="ECU_STATUS", producer="EV-ECU", consumers=("Infotainment",)
        )
        frame = definition.frame(data=b"\x01")
        assert frame.can_id == 0x20
        assert frame.source == "EV-ECU"
        assert definition.frame(source="spoofer").source == "spoofer"

    def test_validation(self):
        with pytest.raises(ValueError):
            MessageDefinition(can_id=0x20, name=" ", producer="X")
        with pytest.raises(ValueError):
            MessageDefinition(can_id=0x20, name="M", producer=" ")
        with pytest.raises(InvalidFrameError):
            MessageDefinition(can_id=MAX_EXTENDED_ID + 1, name="M", producer="X")
