"""Tests for policy derivation and validation."""

import pytest

from repro.casestudy.connected_car import build_threat_model, build_threat_policy_entries
from repro.core.derivation import CanRestriction, PolicyDerivation, ThreatPolicyEntry
from repro.core.policy import (
    AccessRule,
    Direction,
    Permission,
    PolicyCondition,
    RuleEffect,
    SecurityPolicy,
)
from repro.core.validation import PolicyValidator, Severity
from repro.threat.countermeasures import CountermeasureKind
from repro.threat.dread import DreadScore
from repro.threat.stride import StrideClassification
from repro.threat.threats import Threat
from repro.vehicle.messages import NODE_EV_ECU, NODE_SENSORS


def make_threat(identifier="TX", average_scores=(8, 5, 4, 6, 4)) -> Threat:
    return Threat(
        identifier=identifier,
        description="synthetic threat",
        asset="EV-ECU",
        entry_points=("Sensors",),
        stride=StrideClassification.parse("STD"),
        dread=DreadScore.from_sequence(average_scores),
    )


def make_entry(threat=None, **kwargs) -> ThreatPolicyEntry:
    threat = threat if threat is not None else make_threat()
    defaults = dict(
        permission=Permission.READ,
        can_restrictions=(
            CanRestriction(
                node=NODE_SENSORS, direction=Direction.WRITE, messages=("ECU_DISABLE",)
            ),
        ),
    )
    defaults.update(kwargs)
    return ThreatPolicyEntry(threat=threat, **defaults)


class TestPolicyDerivation:
    def test_rules_and_countermeasures_created(self, catalog):
        derivation = PolicyDerivation(catalog).derive([make_entry()], policy_name="p")
        assert len(derivation.policy.access_rules) == 1
        rule = derivation.policy.access_rules[0]
        assert rule.rule_id == "P-TX-1"
        assert rule.derived_from == "TX"
        assert rule.effect is RuleEffect.DENY
        hpe_cms = derivation.countermeasures.by_kind(CountermeasureKind.HARDWARE_POLICY)
        assert len(hpe_cms) == 1
        assert hpe_cms[0].mitigates_threat("TX")

    def test_threshold_skips_low_risk_threats(self, catalog):
        low = make_entry(threat=make_threat("T-LOW", (1, 1, 1, 1, 1)))
        high = make_entry(threat=make_threat("T-HIGH", (9, 9, 9, 9, 9)))
        derivation = PolicyDerivation(catalog, dread_threshold=5.0).derive([low, high])
        assert derivation.skipped_threats == ["T-LOW"]
        assert derivation.policy.mitigated_threats() == {"T-HIGH"}
        best_practice = derivation.countermeasures.by_kind(CountermeasureKind.BEST_PRACTICE)
        assert [cm.mitigates[0] for cm in best_practice] == ["T-LOW"]

    def test_unknown_message_rejected(self, catalog):
        entry = make_entry(
            can_restrictions=(
                CanRestriction(NODE_SENSORS, Direction.WRITE, ("GHOST_MESSAGE",)),
            )
        )
        with pytest.raises(KeyError):
            PolicyDerivation(catalog).derive([entry])

    def test_guidelines_become_guideline_countermeasures(self, catalog):
        entry = make_entry(guidelines=("do the right thing",))
        derivation = PolicyDerivation(catalog).derive([entry])
        guideline_cms = derivation.countermeasures.by_kind(CountermeasureKind.GUIDELINE)
        assert len(guideline_cms) == 1

    def test_app_statements_compiled_into_module(self, catalog, builder):
        derivation = builder.derivation
        assert derivation.selinux_module is not None
        assert len(derivation.selinux_module.rules) >= 1
        assert derivation.policy.app_statements

    def test_case_study_derivation_covers_most_threats(self, catalog, builder):
        policy = builder.model.policy
        mitigated = policy.mitigated_threats()
        # T08 is handled purely by SELinux statements, T12 has residual risk,
        # every other Table I threat gets at least one CAN-level rule.
        assert len(mitigated) >= 14
        assert "T01" in mitigated
        assert "T16" in mitigated

    def test_summary(self, catalog):
        derivation = PolicyDerivation(catalog).derive([make_entry()])
        summary = derivation.summary()
        assert summary["access_rules"] == 1
        assert summary["countermeasures"] == 1


class TestPolicyValidator:
    def make_validator(self, catalog) -> PolicyValidator:
        model = build_threat_model()
        return PolicyValidator(catalog, model.threats)

    def test_case_study_policy_is_deployable(self, catalog, builder):
        validator = self.make_validator(catalog)
        assert validator.is_deployable(builder.model.policy)
        assert validator.coverage_ratio(builder.model.policy) > 0.8

    def test_unknown_node_is_an_error(self, catalog):
        validator = self.make_validator(catalog)
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule("P-1", RuleEffect.DENY, "Spaceship", Direction.READ, ("ECU_DISABLE",))
        )
        errors = validator.errors(policy)
        assert any(f.code == "unknown-node" for f in errors)
        assert not validator.is_deployable(policy)

    def test_unknown_message_is_an_error(self, catalog):
        validator = self.make_validator(catalog)
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule("P-1", RuleEffect.DENY, NODE_EV_ECU, Direction.READ, ("GHOST",))
        )
        assert any(f.code == "unknown-message" for f in validator.errors(policy))

    def test_allow_deny_overlap_is_a_warning(self, catalog):
        validator = self.make_validator(catalog)
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule("P-A", RuleEffect.ALLOW, NODE_EV_ECU, Direction.READ, ("ECU_DISABLE",))
        )
        policy.add_rule(
            AccessRule("P-D", RuleEffect.DENY, NODE_EV_ECU, Direction.READ, ("ECU_DISABLE",))
        )
        findings = validator.validate(policy)
        overlaps = [f for f in findings if f.code == "allow-deny-overlap"]
        assert overlaps and overlaps[0].severity is Severity.WARNING
        # Overlap warnings alone do not block deployment.
        assert validator.is_deployable(policy)

    def test_non_overlapping_conditions_do_not_warn(self, catalog):
        validator = self.make_validator(catalog)
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule(
                "P-A", RuleEffect.ALLOW, NODE_EV_ECU, Direction.READ, ("ECU_DISABLE",),
                condition=PolicyCondition(in_motion=False),
            )
        )
        policy.add_rule(
            AccessRule(
                "P-D", RuleEffect.DENY, NODE_EV_ECU, Direction.READ, ("ECU_DISABLE",),
                condition=PolicyCondition(in_motion=True),
            )
        )
        assert not [f for f in validator.validate(policy) if f.code == "allow-deny-overlap"]

    def test_duplicate_rule_detected(self, catalog):
        validator = self.make_validator(catalog)
        policy = SecurityPolicy("p")
        for rule_id in ("P-1", "P-2"):
            policy.add_rule(
                AccessRule(rule_id, RuleEffect.DENY, NODE_EV_ECU, Direction.READ,
                           ("ECU_DISABLE",))
            )
        findings = validator.validate(policy)
        assert any(f.code == "duplicate-rule" for f in findings)

    def test_uncovered_high_risk_threat_is_a_warning(self, catalog):
        validator = self.make_validator(catalog)
        findings = validator.validate(SecurityPolicy("empty"))
        uncovered = [f for f in findings if f.code == "uncovered-threat"]
        assert len(uncovered) == 16
        assert any(f.severity is Severity.WARNING for f in uncovered)

    def test_findings_by_severity_grouping(self, catalog):
        validator = self.make_validator(catalog)
        findings = validator.validate(SecurityPolicy("empty"))
        grouped = PolicyValidator.findings_by_severity(findings)
        assert sum(len(v) for v in grouped.values()) == len(findings)


class TestCaseStudyEntries:
    def test_sixteen_entries_matching_table1(self, catalog):
        entries = build_threat_policy_entries(catalog)
        assert len(entries) == 16
        assert [e.threat_id for e in entries] == [f"T{i:02d}" for i in range(1, 17)]

    def test_permissions_match_paper_column(self, catalog):
        entries = {e.threat_id: e for e in build_threat_policy_entries(catalog)}
        assert entries["T01"].permission is Permission.READ
        assert entries["T03"].permission is Permission.READ_WRITE
        assert entries["T09"].permission is Permission.READ_WRITE
        assert entries["T14"].permission is Permission.WRITE
        assert entries["T16"].permission is Permission.WRITE
