"""Tests for the HPE approved identifier lists."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hpe.approved_list import ApprovedIdList, IdRange

standard_ids = st.integers(min_value=0, max_value=0x7FF)


class TestIdRange:
    def test_contains(self):
        id_range = IdRange(0x100, 0x1FF)
        assert 0x100 in id_range
        assert 0x1FF in id_range
        assert 0x150 in id_range
        assert 0x200 not in id_range
        assert "x" not in id_range

    def test_length(self):
        assert len(IdRange(0x10, 0x1F)) == 16
        assert len(IdRange(0x10, 0x10)) == 1

    def test_invalid_ranges_rejected(self):
        with pytest.raises(ValueError):
            IdRange(0x20, 0x10)
        with pytest.raises(ValueError):
            IdRange(-1, 5)


class TestApprovedIdList:
    def test_add_and_approve(self):
        approved = ApprovedIdList([0x10, 0x20])
        assert approved.approves(0x10)
        assert 0x20 in approved
        assert not approved.approves(0x30)

    def test_ranges(self):
        approved = ApprovedIdList(ranges=[IdRange(0x100, 0x10F)])
        assert approved.approves(0x105)
        assert not approved.approves(0x110)
        assert len(approved) == 16

    def test_iteration_covers_ids_and_ranges(self):
        approved = ApprovedIdList([0x1], ranges=[IdRange(0x10, 0x12)])
        assert sorted(approved) == [0x1, 0x10, 0x11, 0x12]

    def test_remove(self):
        approved = ApprovedIdList([0x10])
        approved.remove(0x10)
        assert not approved.approves(0x10)
        with pytest.raises(KeyError):
            approved.remove(0x10)

    def test_remove_range_covered_id_rejected(self):
        approved = ApprovedIdList(ranges=[IdRange(0x10, 0x1F)])
        with pytest.raises(ValueError):
            approved.remove(0x15)

    def test_replace_is_atomic_whole_list(self):
        approved = ApprovedIdList([0x10, 0x20])
        approved.replace([0x30], ranges=[IdRange(0x40, 0x41)])
        assert not approved.approves(0x10)
        assert approved.approves(0x30)
        assert approved.approves(0x41)

    def test_clear(self):
        approved = ApprovedIdList([0x10], ranges=[IdRange(0x20, 0x21)])
        approved.clear()
        assert len(approved) == 0

    def test_out_of_range_id_rejected(self):
        with pytest.raises(ValueError):
            ApprovedIdList([0x3FFFFFFF])
        approved = ApprovedIdList()
        with pytest.raises(ValueError):
            approved.replace([-1])

    def test_lock_blocks_direct_modification(self):
        approved = ApprovedIdList([0x10])
        approved.lock()
        assert approved.locked
        with pytest.raises(PermissionError):
            approved.add(0x20)
        with pytest.raises(PermissionError):
            approved.remove(0x10)
        with pytest.raises(PermissionError):
            approved.replace([0x30])
        with pytest.raises(PermissionError):
            approved.clear()
        with pytest.raises(PermissionError):
            approved.add_range(IdRange(0x40, 0x41))
        # Reads still work while locked.
        assert approved.approves(0x10)

    @given(st.sets(standard_ids, max_size=32), standard_ids)
    def test_membership_matches_construction(self, ids, probe):
        approved = ApprovedIdList(ids)
        assert approved.approves(probe) == (probe in ids)

    @given(st.sets(standard_ids, min_size=1, max_size=32))
    def test_explicit_ids_roundtrip(self, ids):
        assert ApprovedIdList(ids).explicit_ids() == frozenset(ids)

    @given(st.sets(standard_ids, max_size=16), st.sets(standard_ids, max_size=16))
    def test_replace_swaps_membership(self, before, after):
        approved = ApprovedIdList(before)
        approved.replace(after)
        for can_id in after:
            assert approved.approves(can_id)
        for can_id in before - after:
            assert not approved.approves(can_id)
