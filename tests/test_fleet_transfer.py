"""Tests for :mod:`repro.fleet.transfer`: columnar codec exactness,
shared-memory transport, lazy spec streaming, and fingerprint parity
across ``spec_transfer`` modes, worker counts and spec paths."""

import warnings

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExperimentConfig, FleetSession
from repro.fleet.results import OUTCOME_COLUMNS, VehicleOutcome
from repro.fleet.runner import FleetRunner, _chunked
from repro.fleet.scenarios import (
    FleetScenario,
    VehicleAction,
    VehicleSpec,
    get_scenario,
    registered_scenarios,
    temporary_scenario,
)
from repro.fleet.transfer import (
    SHM_AVAILABLE,
    SPEC_TRANSFER_MODES,
    OutcomeBlock,
    ShmHandle,
    SpecBlock,
    discard_segment,
    read_block,
    resolve_spec_transfer,
    write_block,
)

SCENARIO_NAMES = [scenario.name for scenario in registered_scenarios()]

needs_shm = pytest.mark.skipif(not SHM_AVAILABLE, reason="no shared_memory here")


class TestSpecBlockRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(
        name=st.sampled_from(SCENARIO_NAMES),
        vehicles=st.integers(min_value=1, max_value=6),
        seed=st.integers(min_value=0, max_value=2**32),
        first_vehicle_id=st.integers(min_value=0, max_value=10_000),
    )
    def test_every_registered_scenario_round_trips_exactly(
        self, name, vehicles, seed, first_vehicle_id
    ):
        """The ISSUE acceptance property: encode -> bytes -> decode is
        the identity on every registered scenario's specs."""
        specs = get_scenario(name).vehicle_specs(
            vehicles, seed, first_vehicle_id=first_vehicle_id
        )
        decoded = SpecBlock.from_bytes(SpecBlock.encode(specs).to_bytes()).decode()
        assert decoded == specs

    def test_lazy_stream_is_bit_identical_to_materialised_specs(self):
        for name in SCENARIO_NAMES:
            scenario = get_scenario(name)
            assert (
                list(scenario.iter_vehicle_specs(12, seed=3, first_vehicle_id=7))
                == scenario.vehicle_specs(12, seed=3, first_vehicle_id=7)
            )

    def test_blocks_compose_like_the_chunking_they_model(self):
        specs = get_scenario("mixed_ev_dos").vehicle_specs(10, seed=1)
        split = (
            SpecBlock.from_bytes(SpecBlock.encode(specs[:4]).to_bytes()).decode()
            + SpecBlock.from_bytes(SpecBlock.encode(specs[4:]).to_bytes()).decode()
        )
        assert split == specs

    def test_exotic_specs_survive_escape_and_pickle_paths(self):
        """Out-of-64-bit integers use the escape table and non-JSON
        params fall back to pickle; both must stay exact."""
        specs = [
            VehicleSpec(
                vehicle_id=2**70,  # beyond int64: escape table
                scenario="custom",
                enforcement="unprotected",
                seed=-5,  # negative: outside the uint64 column
                duration_s=0.25,
                actions=(
                    VehicleAction(0.0, "drive", {"blob": b"\x00\xff"}),  # pickle
                    VehicleAction(0.1, "drive", {"accel": 55}),  # json
                ),
            ),
            VehicleSpec(
                vehicle_id=-3,
                scenario="custom",
                enforcement="unprotected",
                seed=2**80,
                duration_s=0.5,
            ),
        ]
        block = SpecBlock.from_bytes(SpecBlock.encode(specs).to_bytes())
        assert block.decode() == specs
        assert block.escapes  # the escape table was actually exercised

    def test_int_valued_times_are_canonicalised_to_float(self):
        """Hand-built specs with int durations/times must be a fixed
        point of the codec (double columns), so pickle and shm modes
        carry identical specs and fingerprints cannot diverge."""
        spec = VehicleSpec(
            vehicle_id=1,
            scenario="custom",
            enforcement="unprotected",
            seed=2,
            duration_s=5,
            actions=(VehicleAction(0, "drive"),),
        )
        assert isinstance(spec.duration_s, float)
        assert isinstance(spec.actions[0].time, float)
        assert SpecBlock.from_bytes(SpecBlock.encode([spec]).to_bytes()).decode() == [spec]

    def test_interning_collapses_repeated_payloads(self):
        specs = get_scenario("baseline_cruise").vehicle_specs(50, seed=2)
        block = SpecBlock.encode(specs)
        # scenario + enforcement + action kind + a few dozen distinct
        # accel params -- nowhere near one entry per vehicle action.
        assert len(block.table) < len(specs)

    def test_empty_block_round_trips(self):
        assert SpecBlock.from_bytes(SpecBlock.encode([]).to_bytes()).decode() == []

    def test_magic_mismatch_is_rejected(self):
        payload = OutcomeBlock.encode([]).to_bytes()
        with pytest.raises(ValueError, match="SpecBlock"):
            SpecBlock.from_bytes(payload)


class TestOutcomeBlockRoundTrip:
    def _outcome(self, vehicle_id: int) -> VehicleOutcome:
        return VehicleOutcome(
            vehicle_id=vehicle_id,
            scenario="fleet_replay_storm",
            enforcement="hpe+selinux",
            simulated_seconds=0.1 + 0.2,  # a float with an awkward repr
            frames_transmitted=1234,
            frames_delivered=1200,
            frames_blocked=34,
            hpe_decisions=999,
            policy_pushes=2,
            attacks_attempted=3,
            attacks_mitigated=2,
            mean_decision_latency_s=1.25e-7,
            healthy=vehicle_id % 2 == 0,
            wall_seconds=0.0123,
            build_seconds=0.0004,
        )

    def test_round_trip_preserves_the_deterministic_tuple(self):
        outcomes = [self._outcome(i) for i in range(17)]
        decoded = OutcomeBlock.from_bytes(
            OutcomeBlock.encode(outcomes).to_bytes()
        ).decode()
        assert decoded == outcomes
        assert [o.deterministic_tuple() for o in decoded] == [
            o.deterministic_tuple() for o in outcomes
        ]

    def test_schema_covers_every_outcome_field(self):
        """Adding a VehicleOutcome field without extending
        OUTCOME_COLUMNS must fail here, not silently drop data."""
        import dataclasses

        assert [field.name for field in dataclasses.fields(VehicleOutcome)] == [
            name for name, _ in OUTCOME_COLUMNS
        ]


@needs_shm
class TestShmTransport:
    def test_write_read_round_trip_and_unlink(self):
        payload = SpecBlock.encode(
            get_scenario("fuzz_probe").vehicle_specs(3, seed=1)
        ).to_bytes()
        handle = write_block(payload)
        assert read_block(handle) == payload  # unlinks by default
        with pytest.raises(FileNotFoundError):
            read_block(handle)

    def test_discard_segment_is_idempotent(self):
        handle = write_block(b"x" * 32)
        discard_segment(handle.name)
        discard_segment(handle.name)  # second discard: silently nothing

    def test_handles_are_tiny_on_the_pipe(self):
        import pickle

        specs = get_scenario("fleet_replay_storm").vehicle_specs(200, seed=4)
        handle = write_block(SpecBlock.encode(specs).to_bytes())
        try:
            assert len(pickle.dumps(handle)) < 100 < len(pickle.dumps(specs))
        finally:
            discard_segment(handle.name)


class TestModeResolution:
    def test_known_modes_resolve(self):
        assert resolve_spec_transfer("pickle") == "pickle"
        expected = "shm" if SHM_AVAILABLE else "pickle"
        assert resolve_spec_transfer("shm") == expected

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="spec_transfer"):
            resolve_spec_transfer("carrier-pigeon")

    def test_config_validates_the_field(self):
        with pytest.raises(ValueError, match="spec_transfer"):
            ExperimentConfig(scenario="x", vehicles=1, spec_transfer="tcp")
        config = ExperimentConfig(scenario="x", vehicles=1)
        assert config.spec_transfer == "shm"
        assert "--spec-transfer" in config.cli_arguments()
        assert ExperimentConfig.from_dict(config.to_dict()) == config


class TestChunkedLaziness:
    def test_chunked_pulls_only_what_it_yields(self):
        pulled = []

        def source():
            for i in range(100):
                pulled.append(i)
                yield i

        chunks = _chunked(source(), 10)
        assert next(chunks) == list(range(10))
        assert len(pulled) == 10  # nothing beyond the first chunk
        assert next(chunks) == list(range(10, 20))
        assert len(pulled) == 20

    def test_chunked_handles_ragged_tails(self):
        assert list(_chunked(iter(range(7)), 3)) == [[0, 1, 2], [3, 4, 5], [6]]


class TestFingerprintParity:
    """The acceptance sweep: one fingerprint per (scenario, seed)
    regardless of spec_transfer mode, worker count, or whether specs
    were streamed, materialised or pushed through the legacy shim."""

    SEED = 7
    VEHICLES = 10

    def test_modes_workers_and_spec_paths_agree_for_every_scenario(self):
        base = ExperimentConfig(
            scenario="baseline_cruise", vehicles=self.VEHICLES, seed=self.SEED
        )
        sweeps = [
            {"workers": 1},
            {"workers": 4, "chunk_size": 3, "spec_transfer": "pickle"},
            {"workers": 4, "chunk_size": 3, "spec_transfer": "shm"},
        ]
        with FleetSession(base) as session:
            for name in SCENARIO_NAMES:
                results = session.run_matrix(
                    [{"scenario": name, **sweep} for sweep in sweeps]
                )
                fingerprints = {result.fingerprint() for _, result in results}
                assert len(fingerprints) == 1, (name, fingerprints)
                # Materialised spec path (run_specs) matches the stream.
                specs = get_scenario(name).vehicle_specs(self.VEHICLES, self.SEED)
                materialised = session.run_specs(specs, name)
                assert materialised.fingerprint() in fingerprints, name

    def test_legacy_shim_matches_the_shm_default(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos", vehicles=self.VEHICLES, seed=self.SEED,
            workers=4, chunk_size=3,
        )
        with FleetSession(config) as session:
            modern = session.run()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = FleetRunner(workers=4, chunk_size=3).run(
                "mixed_ev_dos", self.VEHICLES, seed=self.SEED
            )
        assert modern.fingerprint() == legacy.fingerprint()


class TestRunMatrixSpecReuse:
    def test_consecutive_matching_entries_generate_specs_once(self):
        calls = {"count": 0}

        def counting_script(index, rng):
            calls["count"] += 1
            return (VehicleAction(0.0, "drive", {"accel": 50}),)

        scenario = FleetScenario(
            name="matrix_reuse_probe",
            description="counts script invocations",
            duration_s=0.05,
            mix=(("unprotected", 1.0),),
            script=counting_script,
        )
        base = ExperimentConfig(scenario="matrix_reuse_probe", vehicles=6, seed=1)
        with temporary_scenario(scenario), FleetSession(base) as session:
            results = session.run_matrix(
                [
                    {"trace_level": "counters"},
                    {"trace_level": "full"},  # same fleet: cached stream
                    {"reuse_cars": False},  # same fleet: cached stream
                    {"seed": 2},  # different fleet: regenerates
                ]
            )
        assert calls["count"] == 6 * 2  # two distinct fleets, not four
        assert len(results) == 4
        fingerprints = [result.fingerprint() for _, result in results]
        assert fingerprints[0] == fingerprints[1] == fingerprints[2]


    def test_fleets_beyond_the_cache_limit_are_not_recorded(self, monkeypatch):
        """run_matrix must not rematerialise huge fleets for reuse:
        past SPEC_CACHE_LIMIT the recording is abandoned and every
        entry pays generation, keeping the parent O(chunk)."""
        calls = {"count": 0}

        def counting_script(index, rng):
            calls["count"] += 1
            return (VehicleAction(0.0, "drive", {"accel": 50}),)

        scenario = FleetScenario(
            name="matrix_cache_cap_probe",
            description="counts script invocations",
            duration_s=0.05,
            mix=(("unprotected", 1.0),),
            script=counting_script,
        )
        monkeypatch.setattr(FleetSession, "SPEC_CACHE_LIMIT", 4)
        base = ExperimentConfig(scenario="matrix_cache_cap_probe", vehicles=6, seed=1)
        with temporary_scenario(scenario), FleetSession(base) as session:
            session.run_matrix([{"trace_level": "counters"}, {"trace_level": "full"}])
        assert calls["count"] == 6 * 2  # same fleet, but too big to cache


class TestLazySessionStream:
    def test_iter_vehicle_specs_applies_enforcement_override_lazily(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos", vehicles=5, seed=3, enforcement="hpe-only"
        )
        stream = FleetSession(config).iter_vehicle_specs()
        assert iter(stream) is iter(stream)  # a true generator, not a list
        assert [spec.enforcement for spec in stream] == ["hpe-only"] * 5

    @needs_shm
    def test_abandoned_parallel_stream_leaves_no_segments_behind(self):
        """Abandoning a 4-worker shm stream mid-run must not strand
        OutcomeBlock segments: still-running chunks are parked and
        swept once finished (here: by close())."""
        import os
        import time

        def segments() -> set[str]:
            try:
                return {n for n in os.listdir("/dev/shm") if n.startswith("psm_")}
            except FileNotFoundError:  # non-Linux POSIX: skip the disk check
                return set()

        before = segments()
        config = ExperimentConfig(
            scenario="baseline_cruise", vehicles=80, seed=1,
            workers=4, chunk_size=5,
        )
        with FleetSession(config) as session:
            stream = session.iter_outcomes()
            next(stream)
            stream.close()  # abandon with several chunks in flight
            time.sleep(1.0)  # let the in-flight workers finish
        assert segments() <= before

    def test_parallel_run_generates_specs_as_the_window_advances(self):
        """The parent must not materialise the fleet before submitting:
        with a window of workers + 2 chunks, the number of specs
        generated by the time the first outcome arrives is far below
        the fleet size."""
        generated = []

        def probe_script(index, rng):
            generated.append(index)
            return (VehicleAction(0.0, "drive", {"accel": 40}),)

        scenario = FleetScenario(
            name="lazy_window_probe",
            description="records generation order",
            duration_s=0.05,
            mix=(("unprotected", 1.0),),
            script=probe_script,
        )
        config = ExperimentConfig(
            scenario="lazy_window_probe", vehicles=120, seed=1,
            workers=2, chunk_size=10,
        )
        with temporary_scenario(scenario), FleetSession(config) as session:
            stream = session.iter_outcomes()
            next(stream)
            # Window is workers + 2 = 4 chunks of 10, plus one chunk
            # prefetched on first consumption.
            assert len(generated) <= 5 * config.chunk_size
            remaining = sum(1 for _ in stream)
        assert remaining == config.vehicles - 1
        assert len(generated) == config.vehicles
