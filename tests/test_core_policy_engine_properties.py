"""Property-based tests for the policy evaluator's core invariants.

These invariants are what make the enforcement sound:

* a deny rule can never *add* access (effective sets only shrink);
* an allow rule can never remove access;
* deny always wins over allow for the same message;
* effective identifier sets are always a subset of the catalogue.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.policy import (
    AccessRule,
    CarSituation,
    Direction,
    PolicyCondition,
    RuleEffect,
    SecurityPolicy,
)
from repro.core.policy_engine import PolicyEvaluator
from repro.vehicle.messages import ALL_NODES, standard_catalog
from repro.vehicle.modes import CarMode

CATALOG = standard_catalog()
EVALUATOR = PolicyEvaluator(CATALOG)
ALL_MESSAGE_NAMES = [m.name for m in CATALOG]
ALL_IDS = frozenset(m.can_id for m in CATALOG)

nodes = st.sampled_from(list(ALL_NODES))
messages = st.lists(st.sampled_from(ALL_MESSAGE_NAMES), min_size=1, max_size=4, unique=True)
directions = st.sampled_from(list(Direction))
situations = st.builds(
    CarSituation,
    mode=st.sampled_from(list(CarMode)),
    in_motion=st.booleans(),
    alarm_armed=st.booleans(),
    accident=st.booleans(),
)
conditions = st.builds(
    PolicyCondition,
    modes=st.frozensets(st.sampled_from(list(CarMode)), max_size=2),
    in_motion=st.one_of(st.none(), st.booleans()),
    alarm_armed=st.one_of(st.none(), st.booleans()),
    accident=st.one_of(st.none(), st.booleans()),
)


def rule_strategy(effect: RuleEffect):
    return st.builds(
        AccessRule,
        rule_id=st.uuids().map(lambda u: f"P-{u.hex[:8]}"),
        effect=st.just(effect),
        node=st.one_of(nodes, st.just("*")),
        direction=directions,
        messages=messages.map(tuple),
        condition=conditions,
    )


@settings(max_examples=60, deadline=None)
@given(rules=st.lists(rule_strategy(RuleEffect.DENY), max_size=5),
       node=nodes, situation=situations)
def test_deny_rules_only_shrink_access(rules, node, situation):
    base = EVALUATOR.effective_for_node(node, SecurityPolicy("empty"), situation)
    restricted = EVALUATOR.effective_for_node(
        node, SecurityPolicy("deny", access_rules=rules), situation
    )
    assert restricted.read_ids <= base.read_ids
    assert restricted.write_ids <= base.write_ids


@settings(max_examples=60, deadline=None)
@given(rules=st.lists(rule_strategy(RuleEffect.ALLOW), max_size=5),
       node=nodes, situation=situations)
def test_allow_rules_only_grow_access(rules, node, situation):
    base = EVALUATOR.effective_for_node(node, SecurityPolicy("empty"), situation)
    widened = EVALUATOR.effective_for_node(
        node, SecurityPolicy("allow", access_rules=rules), situation
    )
    assert widened.read_ids >= base.read_ids
    assert widened.write_ids >= base.write_ids


@settings(max_examples=60, deadline=None)
@given(node=nodes, message=st.sampled_from(ALL_MESSAGE_NAMES),
       direction=st.sampled_from([Direction.READ, Direction.WRITE]),
       situation=situations)
def test_deny_wins_over_allow_for_the_same_message(node, message, direction, situation):
    policy = SecurityPolicy("conflict")
    policy.add_rule(AccessRule("P-ALLOW", RuleEffect.ALLOW, node, direction, (message,)))
    policy.add_rule(AccessRule("P-DENY", RuleEffect.DENY, node, direction, (message,)))
    effective = EVALUATOR.effective_for_node(node, policy, situation)
    can_id = CATALOG.id_of(message)
    if direction is Direction.READ:
        assert can_id not in effective.read_ids
    else:
        assert can_id not in effective.write_ids


@settings(max_examples=60, deadline=None)
@given(
    deny_rules=st.lists(rule_strategy(RuleEffect.DENY), max_size=3),
    allow_rules=st.lists(rule_strategy(RuleEffect.ALLOW), max_size=3),
    node=nodes,
    situation=situations,
)
def test_effective_sets_stay_within_the_catalogue(deny_rules, allow_rules, node, situation):
    policy = SecurityPolicy("mixed", access_rules=deny_rules + allow_rules)
    effective = EVALUATOR.effective_for_node(node, policy, situation)
    assert effective.read_ids <= ALL_IDS
    assert effective.write_ids <= ALL_IDS


@settings(max_examples=40, deadline=None)
@given(node=nodes, situation=situations)
def test_empty_policy_matches_catalogue_exactly(node, situation):
    effective = EVALUATOR.effective_for_node(node, SecurityPolicy("empty"), situation)
    expected_reads = {
        m.can_id for m in CATALOG.consumed_by(node) if m.allowed_in_mode(situation.mode)
    }
    expected_writes = {
        m.can_id for m in CATALOG.produced_by(node) if m.allowed_in_mode(situation.mode)
    }
    assert effective.read_ids == expected_reads
    assert effective.write_ids == expected_writes
