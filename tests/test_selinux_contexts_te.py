"""Tests for SELinux-like contexts, labelling and type enforcement."""

import pytest

from repro.selinux.contexts import LabelStore, SecurityContext
from repro.selinux.te import AllowRule, TypeEnforcementPolicy, permissions_for_class


class TestSecurityContext:
    def test_parse_and_render(self):
        context = SecurityContext.parse("system_u:system_r:infotainment_t")
        assert context.type_ == "infotainment_t"
        assert context.render() == "system_u:system_r:infotainment_t"

    def test_parse_with_level(self):
        context = SecurityContext.parse("system_u:object_r:can_t:s0")
        assert context.level == "s0"
        assert context.render().endswith(":s0")

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            SecurityContext.parse("just-one-part")

    def test_components_validated(self):
        with pytest.raises(ValueError):
            SecurityContext(user="", role="r", type_="t")
        with pytest.raises(ValueError):
            SecurityContext(user="a:b", role="r", type_="t")

    def test_convenience_constructors(self):
        assert SecurityContext.for_domain("x_t").role == "system_r"
        assert SecurityContext.for_object("x_t").role == "object_r"


class TestLabelStore:
    def test_label_and_lookup(self):
        labels = LabelStore()
        labels.label_domain("browser", "infotainment_media_t")
        labels.label_object("store", "software_store_t")
        assert labels.type_of("browser") == "infotainment_media_t"
        assert labels.context_of("store").role == "object_r"
        assert "browser" in labels
        assert len(labels) == 2
        assert labels.entities_of_type("software_store_t") == ["store"]

    def test_unlabelled_entity_raises(self):
        with pytest.raises(KeyError):
            LabelStore().context_of("ghost")

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            LabelStore().label(" ", SecurityContext.for_domain("x_t"))


class TestAllowRule:
    def test_grants(self):
        rule = AllowRule("a_t", "b_t", "can_bus", frozenset({"read"}))
        assert rule.grants("a_t", "b_t", "can_bus", "read")
        assert not rule.grants("a_t", "b_t", "can_bus", "write")
        assert not rule.grants("x_t", "b_t", "can_bus", "read")

    def test_unknown_class_rejected(self):
        with pytest.raises(ValueError):
            AllowRule("a_t", "b_t", "nonsense", frozenset({"read"}))

    def test_unknown_permission_rejected(self):
        with pytest.raises(ValueError):
            AllowRule("a_t", "b_t", "can_bus", frozenset({"fly"}))

    def test_empty_permissions_rejected(self):
        with pytest.raises(ValueError):
            AllowRule("a_t", "b_t", "can_bus", frozenset())

    def test_render(self):
        rule = AllowRule("a_t", "b_t", "can_bus", frozenset({"read", "write"}))
        assert rule.render() == "allow a_t b_t:can_bus { read write };"

    def test_permissions_for_class(self):
        assert "install" in permissions_for_class("package")
        with pytest.raises(ValueError):
            permissions_for_class("martian")


class TestTypeEnforcementPolicy:
    def make_policy(self) -> TypeEnforcementPolicy:
        policy = TypeEnforcementPolicy(types=("a_t", "b_t", "c_t"))
        policy.add_rule(AllowRule("a_t", "b_t", "can_bus", frozenset({"read"})))
        policy.add_rule(AllowRule("a_t", "b_t", "can_bus", frozenset({"write"})))
        policy.add_rule(AllowRule("c_t", "b_t", "package", frozenset({"install"})))
        return policy

    def test_default_deny(self):
        policy = self.make_policy()
        assert policy.check("a_t", "b_t", "can_bus", "read")
        assert not policy.check("b_t", "a_t", "can_bus", "read")
        assert not policy.check("c_t", "b_t", "package", "remove")

    def test_rules_accumulate_permissions(self):
        policy = self.make_policy()
        assert policy.allowed_permissions("a_t", "b_t", "can_bus") == {"read", "write"}
        assert policy.allowed_permissions("x_t", "y_t", "can_bus") == frozenset()

    def test_undeclared_type_rejected(self):
        policy = TypeEnforcementPolicy(types=("a_t",))
        with pytest.raises(ValueError):
            policy.add_rule(AllowRule("a_t", "ghost_t", "can_bus", frozenset({"read"})))

    def test_rules_for_source_and_target(self):
        policy = self.make_policy()
        assert len(policy.rules_for_source("a_t")) == 2
        assert len(policy.rules_for_target("b_t")) == 3

    def test_render_contains_declarations_and_rules(self):
        text = self.make_policy().render()
        assert "type a_t;" in text
        assert "allow c_t b_t:package { install };" in text

    def test_merge(self):
        policy = self.make_policy()
        other = TypeEnforcementPolicy(types=("d_t", "b_t"))
        other.add_rule(AllowRule("d_t", "b_t", "service", frozenset({"start"})))
        merged = policy.merge(other)
        assert merged.check("a_t", "b_t", "can_bus", "read")
        assert merged.check("d_t", "b_t", "service", "start")
        assert len(merged) == 4
