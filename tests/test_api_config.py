"""Tests for :class:`repro.api.config.ExperimentConfig`: validation,
presets, serialisation round trips and the CLI-equivalence surface."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.cli import build_parser
from repro.api.config import PRESETS, ExperimentConfig
from repro.can.trace import TraceLevel
from repro.core.enforcement import EnforcementConfig
from repro.fleet.runner import DEFAULT_FLEET_INBOX_LIMIT
from repro.fleet.scenarios import ENFORCEMENT_LABELS


class TestValidation:
    def test_defaults_are_the_fast_path(self):
        config = ExperimentConfig(scenario="fleet_replay_storm", vehicles=10)
        assert config.trace_level is TraceLevel.COUNTERS
        assert config.inbox_limit == DEFAULT_FLEET_INBOX_LIMIT
        assert config.reuse_cars and config.compile_tables
        assert config.workers == 1

    @pytest.mark.parametrize(
        "overrides, match",
        [
            ({"vehicles": 0}, "vehicles"),
            ({"workers": 0}, "workers"),
            ({"first_vehicle_id": -1}, "first_vehicle_id"),
            ({"enforcement": "tinfoil"}, "enforcement label"),
            ({"inbox_limit": 0}, "inbox_limit"),
            ({"chunk_size": 0}, "chunk_size"),
            ({"retry": -1}, "retry"),
            ({"chunk_timeout_s": 0}, "chunk_timeout_s"),
            ({"chunk_timeout_s": -2.5}, "chunk_timeout_s"),
        ],
    )
    def test_bad_fields_raise(self, overrides, match):
        kwargs = {"scenario": "fleet_replay_storm", "vehicles": 10, **overrides}
        with pytest.raises(ValueError, match=match):
            ExperimentConfig(**kwargs)

    def test_empty_scenario_raises(self):
        with pytest.raises(ValueError, match="scenario"):
            ExperimentConfig(scenario="  ", vehicles=1)

    def test_bad_trace_level_raises(self):
        with pytest.raises(ValueError):
            ExperimentConfig(scenario="x", vehicles=1, trace_level="verbose")

    def test_dict_valued_parameters_stay_hashable(self):
        config = ExperimentConfig(
            scenario="x", vehicles=1, scenario_parameters={"mix": {"b": 2, "a": 1}}
        )
        assert hash(config) is not None
        assert config.scenario_parameters == (("mix", (("a", 1), ("b", 2))),)
        assert ExperimentConfig.from_json(config.to_json()) == config

    def test_scenario_parameters_canonicalise(self):
        from_dict = ExperimentConfig(
            scenario="x", vehicles=1, scenario_parameters={"b": [1, 2], "a": 3}
        )
        from_pairs = ExperimentConfig(
            scenario="x", vehicles=1, scenario_parameters=(("a", 3), ("b", (1, 2)))
        )
        assert from_dict == from_pairs
        assert hash(from_dict) == hash(from_pairs)

    def test_with_overrides_revalidates(self):
        config = ExperimentConfig(scenario="x", vehicles=4)
        assert config.with_overrides(workers=4).workers == 4
        with pytest.raises(ValueError):
            config.with_overrides(workers=0)

    def test_resilience_defaults(self):
        config = ExperimentConfig(scenario="x", vehicles=4)
        assert config.retry == 2
        assert config.chunk_timeout_s is None
        assert config.degrade is True

    def test_chunk_timeout_coerces_to_float(self):
        config = ExperimentConfig(scenario="x", vehicles=4, chunk_timeout_s=30)
        assert isinstance(config.chunk_timeout_s, float)
        assert config.chunk_timeout_s == 30.0

    def test_retry_policy_counts_the_first_attempt(self):
        assert ExperimentConfig(
            scenario="x", vehicles=4, retry=2
        ).retry_policy().max_attempts == 3
        assert ExperimentConfig(
            scenario="x", vehicles=4, retry=0
        ).retry_policy().max_attempts == 1


class TestPresets:
    def test_debug_is_fully_inspectable(self):
        config = ExperimentConfig.debug("fleet_replay_storm", 5)
        assert config.workers == 1
        assert config.trace_level is TraceLevel.FULL
        assert config.inbox_limit is None
        assert not config.reuse_cars

    def test_throughput_is_the_fast_path(self):
        config = ExperimentConfig.throughput("fleet_replay_storm", 5)
        assert config.workers == 4
        assert config.trace_level is TraceLevel.COUNTERS
        assert config.reuse_cars and config.compile_tables

    def test_faithful_uses_the_object_decision_path(self):
        config = ExperimentConfig.faithful("fleet_replay_storm", 5)
        assert not config.compile_tables
        assert not config.reuse_cars
        assert config.trace_level is TraceLevel.FULL

    def test_preset_accepts_overrides(self):
        config = ExperimentConfig.preset("throughput", "x", 5, workers=2, seed=9)
        assert config.workers == 2
        assert config.seed == 9

    def test_unknown_preset_raises(self):
        with pytest.raises(ValueError, match="unknown preset"):
            ExperimentConfig.preset("warp", "x", 5)

    def test_preset_registry_names(self):
        assert set(PRESETS) == {"debug", "throughput", "faithful"}

    def test_resilience_posture_per_preset(self):
        # Debug and faithful want failures loud; throughput heals them.
        assert ExperimentConfig.debug("x", 5).retry == 0
        assert ExperimentConfig.debug("x", 5).degrade is False
        assert ExperimentConfig.faithful("x", 5).retry == 0
        throughput = ExperimentConfig.throughput("x", 5)
        assert throughput.retry == 2
        assert throughput.chunk_timeout_s == 120.0
        assert throughput.degrade is True


class TestSerialisation:
    def test_dict_round_trip(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos",
            vehicles=42,
            seed=7,
            enforcement="hpe-only",
            scenario_parameters={"frames": (30, 80)},
            trace_level="ring",
            inbox_limit=None,
            workers=4,
            chunk_size=5,
            reuse_cars=False,
            compile_tables=False,
        )
        assert ExperimentConfig.from_dict(config.to_dict()) == config

    def test_json_round_trip_restores_tuples(self):
        config = ExperimentConfig(
            scenario="x", vehicles=3, scenario_parameters={"window": (0.1, 0.2)}
        )
        rebuilt = ExperimentConfig.from_json(config.to_json())
        assert rebuilt == config
        assert rebuilt.scenario_parameters == (("window", (0.1, 0.2)),)

    def test_unknown_keys_rejected(self):
        data = ExperimentConfig(scenario="x", vehicles=3).to_dict()
        data["vehicels"] = 5
        with pytest.raises(ValueError, match="vehicels"):
            ExperimentConfig.from_dict(data)

    def test_missing_required_keys_rejected(self):
        with pytest.raises(ValueError, match="missing required"):
            ExperimentConfig.from_dict({"scenario": "x"})

    def test_non_object_json_rejected(self):
        with pytest.raises(ValueError, match="object"):
            ExperimentConfig.from_json("[1, 2]")

    @settings(max_examples=60, deadline=None)
    @given(
        scenario=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126), min_size=1, max_size=20
        ),
        vehicles=st.integers(min_value=1, max_value=10**6),
        seed=st.integers(min_value=-(2**31), max_value=2**31),
        first_vehicle_id=st.integers(min_value=0, max_value=10**6),
        enforcement=st.sampled_from((None,) + ENFORCEMENT_LABELS),
        params=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(min_value=-(10**6), max_value=10**6),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=12),
                st.booleans(),
                st.lists(st.integers(min_value=0, max_value=99), max_size=4),
            ),
            max_size=4,
        ),
        trace_level=st.sampled_from(list(TraceLevel)),
        inbox_limit=st.one_of(st.none(), st.integers(min_value=1, max_value=10**5)),
        workers=st.integers(min_value=1, max_value=16),
        chunk_size=st.one_of(st.none(), st.integers(min_value=1, max_value=512)),
        reuse_cars=st.booleans(),
        compile_tables=st.booleans(),
        retry=st.integers(min_value=0, max_value=5),
        chunk_timeout_s=st.one_of(
            st.none(), st.floats(min_value=0.001, max_value=3600.0)
        ),
        degrade=st.booleans(),
    )
    def test_property_round_trips(self, scenario, vehicles, seed, first_vehicle_id,
                                  enforcement, params, trace_level, inbox_limit,
                                  workers, chunk_size, reuse_cars, compile_tables,
                                  retry, chunk_timeout_s, degrade):
        config = ExperimentConfig(
            scenario=scenario,
            vehicles=vehicles,
            seed=seed,
            first_vehicle_id=first_vehicle_id,
            enforcement=enforcement,
            scenario_parameters=params,
            trace_level=trace_level,
            inbox_limit=inbox_limit,
            workers=workers,
            chunk_size=chunk_size,
            reuse_cars=reuse_cars,
            compile_tables=compile_tables,
            retry=retry,
            chunk_timeout_s=chunk_timeout_s,
            degrade=degrade,
        )
        assert ExperimentConfig.from_dict(config.to_dict()) == config
        assert ExperimentConfig.from_json(config.to_json()) == config
        assert ExperimentConfig.from_json(
            json.dumps(json.loads(config.to_json()))
        ) == config


class TestConfigHash:
    """The service's dedup key: canonical, order-blind, round-trip stable."""

    def test_hash_is_sha256_hex(self):
        digest = ExperimentConfig(scenario="x", vehicles=3).config_hash()
        assert len(digest) == 64
        assert int(digest, 16) >= 0  # valid hex

    def test_equal_configs_hash_equal(self):
        a = ExperimentConfig(scenario="mixed_ev_dos", vehicles=10, seed=4)
        b = ExperimentConfig(scenario="mixed_ev_dos", vehicles=10, seed=4)
        assert a.config_hash() == b.config_hash()

    def test_any_field_change_changes_the_hash(self):
        base = ExperimentConfig(scenario="mixed_ev_dos", vehicles=10)
        for override in (
            {"vehicles": 11},
            {"seed": 1},
            {"workers": 2},
            {"enforcement": "hpe-only"},
            {"scenario_parameters": {"frames": 9}},
        ):
            assert base.with_overrides(**override).config_hash() != base.config_hash()

    def test_hash_invariant_to_dict_key_order(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos",
            vehicles=7,
            seed=2,
            scenario_parameters={"b": 1, "a": 2},
        )
        data = config.to_dict()
        reversed_data = dict(reversed(list(data.items())))
        assert list(reversed_data) != list(data)
        assert (
            ExperimentConfig.from_dict(reversed_data).config_hash()
            == config.config_hash()
        )

    def test_hash_invariant_to_parameter_order(self):
        a = ExperimentConfig(
            scenario="x", vehicles=3, scenario_parameters={"p": 1, "q": 2}
        )
        b = ExperimentConfig(
            scenario="x", vehicles=3, scenario_parameters={"q": 2, "p": 1}
        )
        assert a.config_hash() == b.config_hash()

    def test_hash_stable_across_serialisation_round_trips(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos",
            vehicles=5,
            scenario_parameters={"window": (0.25, 0.5), "tags": ["a", "b"]},
            trace_level="ring",
        )
        once = ExperimentConfig.from_dict(config.to_dict())
        twice = ExperimentConfig.from_json(once.to_json())
        assert once.config_hash() == config.config_hash()
        assert twice.config_hash() == config.config_hash()

    def test_canonical_json_has_sorted_keys_and_no_whitespace(self):
        text = ExperimentConfig(scenario="x", vehicles=3).canonical_json()
        assert ": " not in text and ", " not in text
        keys = list(json.loads(text))
        assert keys == sorted(keys)

    @settings(max_examples=40, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**31),
        params=st.dictionaries(
            st.text(min_size=1, max_size=8),
            st.one_of(
                st.integers(min_value=-(10**6), max_value=10**6),
                st.floats(allow_nan=False, allow_infinity=False),
                st.text(max_size=12),
                st.booleans(),
            ),
            max_size=4,
        ),
    )
    def test_property_hash_survives_round_trip(self, seed, params):
        config = ExperimentConfig(
            scenario="x", vehicles=3, seed=seed, scenario_parameters=params
        )
        rebuilt = ExperimentConfig.from_json(config.to_json())
        assert rebuilt.config_hash() == config.config_hash()


class TestCliEquivalence:
    def test_cli_arguments_parse_back_to_the_same_config(self):
        config = ExperimentConfig(
            scenario="fleet_replay_storm",
            vehicles=25,
            seed=3,
            first_vehicle_id=100,
            enforcement="unprotected",
            scenario_parameters={"frames": (30, 80), "note": "sweep"},
            trace_level="ring",
            inbox_limit=None,
            workers=2,
            chunk_size=4,
            reuse_cars=False,
            compile_tables=False,
            retry=4,
            chunk_timeout_s=45.0,
            degrade=False,
        )
        from repro.api.cli import _resolve_config

        args = build_parser().parse_args(config.cli_arguments())
        assert _resolve_config(args) == config

    def test_cli_command_names_the_module(self):
        config = ExperimentConfig(scenario="x", vehicles=1)
        assert config.cli_command().startswith("python -m repro fleet run ")

    def test_cli_command_shell_quoting_survives_sequence_params(self):
        import shlex

        from repro.api.cli import _resolve_config

        config = ExperimentConfig(
            scenario="x",
            vehicles=2,
            scenario_parameters={"burst": (1, 2), "note": "two words"},
        )
        # The printed command, split exactly as a shell would split it,
        # must parse back to the identical config.
        argv = shlex.split(config.cli_command())[3:]  # drop python -m repro
        args = build_parser().parse_args(argv)
        assert _resolve_config(args) == config


class TestEnforcementFromLabel:
    @pytest.mark.parametrize("label", ENFORCEMENT_LABELS)
    def test_round_trips_every_label(self, label):
        assert EnforcementConfig.from_label(label).label == label

    def test_named_constructors_round_trip(self):
        for config in (
            EnforcementConfig.none(),
            EnforcementConfig.software_only(),
            EnforcementConfig.hardware_only(),
            EnforcementConfig.full(),
        ):
            assert EnforcementConfig.from_label(config.label) == config

    def test_compile_tables_toggle(self):
        assert not EnforcementConfig.from_label("hpe-only", compile_tables=False).compile_tables

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError, match="unknown enforcement label"):
            EnforcementConfig.from_label("hpe+guesswork")
