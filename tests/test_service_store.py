"""Tests for the service job store: schema, state machine, result cache."""

import json

import pytest

from repro.api.config import ExperimentConfig
from repro.fleet.results import FleetAggregator, FleetResult, VehicleOutcome
from repro.service.store import JOB_STATES, ServiceStore


class FakeClock:
    """A settable calendar clock so lease/gc arithmetic is deterministic."""

    def __init__(self, start: float = 1_000.0) -> None:
        self.time = start

    def __call__(self) -> float:
        return self.time

    def advance(self, seconds: float) -> None:
        self.time += seconds


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def store(tmp_path, clock):
    with ServiceStore(tmp_path / "svc.db", now=clock) as store:
        yield store


def config(**overrides) -> ExperimentConfig:
    values = dict(scenario="mixed_ev_dos", vehicles=5, seed=0)
    values.update(overrides)
    return ExperimentConfig(**values)


def make_result(scenario: str = "mixed_ev_dos", count: int = 3) -> FleetResult:
    aggregator = FleetAggregator(scenario)
    for i in range(count):
        aggregator.add(
            VehicleOutcome(
                vehicle_id=i,
                scenario=scenario,
                enforcement="hpe+selinux",
                simulated_seconds=0.3,
                frames_transmitted=100 + i,
                frames_delivered=90,
                frames_blocked=10,
                hpe_decisions=50,
                policy_pushes=2,
                attacks_attempted=1,
                attacks_mitigated=1,
                mean_decision_latency_s=1e-7,
                healthy=True,
            )
        )
    return aggregator.result(wall_seconds=0.5)


class TestSubmit:
    def test_submit_enqueues_with_config_hash(self, store, clock):
        cfg = config(seed=9)
        job, cached = store.submit(cfg)
        assert not cached
        assert job.state == "queued"
        assert job.config_hash == cfg.config_hash()
        assert job.config == cfg.to_dict()
        assert job.submitted_at == clock.time
        assert job.attempts == 0

    def test_submit_accepts_plain_dicts(self, store):
        job, _ = store.submit(config().to_dict())
        assert job.config_object() == config()

    def test_submit_rejects_other_types(self, store):
        with pytest.raises(TypeError, match="ExperimentConfig"):
            store.submit("not a config")

    def test_submit_rejects_bad_max_attempts(self, store):
        with pytest.raises(ValueError, match="max_attempts"):
            store.submit(config(), max_attempts=0)

    def test_cached_flag_reflects_result_cache(self, store):
        cfg = config()
        store.store_result(cfg.config_hash(), make_result())
        _, cached = store.submit(cfg)
        assert cached

    def test_duplicate_submissions_share_a_hash(self, store):
        a, _ = store.submit(config())
        b, _ = store.submit(config())
        assert a.id != b.id
        assert a.config_hash == b.config_hash

    def test_config_round_trips_through_the_store(self, store):
        cfg = config(scenario_parameters={"burst": (2, 5)}, trace_level="ring")
        job, _ = store.submit(cfg)
        assert store.job(job.id).config_object() == cfg


class TestInspection:
    def test_job_returns_none_for_unknown_id(self, store):
        assert store.job(999) is None

    def test_jobs_newest_first_with_state_filter(self, store):
        a, _ = store.submit(config(seed=1))
        b, _ = store.submit(config(seed=2))
        store.cancel(a.id)
        assert [j.id for j in store.jobs()] == [b.id, a.id]
        assert [j.id for j in store.jobs(state="queued")] == [b.id]
        assert [j.id for j in store.jobs(state="cancelled")] == [a.id]

    def test_jobs_rejects_unknown_state(self, store):
        with pytest.raises(ValueError, match="unknown job state"):
            store.jobs(state="paused")

    def test_counts_cover_every_state(self, store):
        store.submit(config())
        counts = store.counts()
        assert set(counts) == set(JOB_STATES)
        assert counts["queued"] == 1
        assert counts["done"] == 0


class TestTransitions:
    def test_queued_to_leased_and_back(self, store):
        job, _ = store.submit(config())
        leased = store.transition(job.id, "leased", worker="w0")
        assert leased.state == "leased" and leased.worker == "w0"
        requeued = store.transition(job.id, "queued", worker=None)
        assert requeued.state == "queued"

    def test_illegal_transition_returns_none(self, store):
        job, _ = store.submit(config())
        # queued -> done is not a legal edge (must lease first).
        assert store.transition(job.id, "done") is None

    def test_terminal_states_are_sticky(self, store):
        job, _ = store.submit(config())
        store.cancel(job.id)
        assert store.transition(job.id, "leased") is None
        assert store.cancel(job.id) is None

    def test_unknown_state_rejected(self, store):
        job, _ = store.submit(config())
        with pytest.raises(ValueError, match="unknown job state"):
            store.transition(job.id, "paused")

    def test_protected_columns_rejected(self, store):
        job, _ = store.submit(config())
        with pytest.raises(ValueError, match="config_hash"):
            store.transition(job.id, "leased", config_hash="forged")

    def test_cancel_queued_sets_finished_at(self, store, clock):
        job, _ = store.submit(config())
        clock.advance(5.0)
        cancelled = store.cancel(job.id)
        assert cancelled.state == "cancelled"
        assert cancelled.finished_at == clock.time


class TestResultCache:
    def test_store_and_decode_round_trip(self, store):
        result = make_result()
        assert store.store_result("h1", result)
        decoded = store.result_for("h1")
        assert decoded == result
        assert decoded.fingerprint() == result.fingerprint()
        assert decoded.to_dict() == result.to_dict()

    def test_first_write_wins(self, store):
        first = make_result(count=2)
        second = make_result(count=4)
        assert store.store_result("h1", first)
        assert not store.store_result("h1", second)
        assert store.result_for("h1") == first

    def test_miss_returns_none(self, store):
        assert store.result_for("absent") is None

    def test_hit_accounting(self, store):
        store.store_result("h1", make_result())
        store.record_cache_hit("h1")
        store.record_cache_hit("h1")
        assert store.cache_stats() == {"entries": 1, "hits": 2}

    def test_stored_json_is_canonical(self, store):
        # The stored bytes are sorted-key, separator-free JSON: stable
        # across processes, so dedup'd submissions see identical bytes.
        store.store_result("h1", make_result())
        with store._lock:
            raw = store._conn.execute(
                "SELECT result FROM results WHERE config_hash='h1'"
            ).fetchone()[0]
        assert raw == json.dumps(
            json.loads(raw), sort_keys=True, separators=(",", ":")
        )


class TestWorkerMetrics:
    def test_upsert_keeps_latest_snapshot(self, store):
        store.publish_worker_metrics("w0", '{"counters": {"a": 1}}')
        store.publish_worker_metrics("w0", '{"counters": {"a": 2}}')
        store.publish_worker_metrics("w1", '{"counters": {"a": 5}}')
        rows = store.worker_metrics()
        assert [worker for worker, _ in rows] == ["w0", "w1"]
        assert json.loads(rows[0][1]) == {"counters": {"a": 2}}


class TestGc:
    def test_collects_old_terminal_jobs_only(self, store, clock):
        done, _ = store.submit(config(seed=1))
        store.transition(done.id, "leased")
        store.transition(done.id, "done", finished_at=clock.time)
        queued, _ = store.submit(config(seed=2))
        clock.advance(100.0)
        fresh, _ = store.submit(config(seed=3))
        store.transition(fresh.id, "leased")
        store.transition(fresh.id, "done", finished_at=clock.time)
        deleted = store.gc(max_age_s=50.0)
        assert deleted == {"jobs": 1, "results": 0}
        assert store.job(done.id) is None
        assert store.job(queued.id) is not None
        assert store.job(fresh.id) is not None

    def test_rejects_non_terminal_states(self, store):
        with pytest.raises(ValueError, match="terminal"):
            store.gc(states=("queued",))

    def test_include_results_drops_unreferenced_entries(self, store, clock):
        cfg = config()
        job, _ = store.submit(cfg)
        store.transition(job.id, "leased")
        store.transition(job.id, "done", finished_at=clock.time)
        store.store_result(cfg.config_hash(), make_result())
        store.store_result("orphan", make_result())
        deleted = store.gc(include_results=True)
        assert deleted == {"jobs": 1, "results": 2}
        assert store.result_for(cfg.config_hash()) is None

    def test_results_kept_by_default(self, store, clock):
        cfg = config()
        job, _ = store.submit(cfg)
        store.transition(job.id, "leased")
        store.transition(job.id, "done", finished_at=clock.time)
        store.store_result(cfg.config_hash(), make_result())
        assert store.gc() == {"jobs": 1, "results": 0}
        assert store.result_for(cfg.config_hash()) is not None
