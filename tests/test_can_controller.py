"""Tests for the CAN controller error-confinement state machine and filters."""

import pytest

from repro.can.controller import (
    BUS_OFF_THRESHOLD,
    ERROR_PASSIVE_THRESHOLD,
    CANController,
    ControllerState,
)
from repro.can.errors import BusOffError
from repro.can.frame import CANFrame


class TestErrorConfinement:
    def test_starts_error_active(self):
        controller = CANController("node")
        assert controller.state is ControllerState.ERROR_ACTIVE
        assert not controller.is_bus_off

    def test_becomes_error_passive_on_tx_errors(self):
        controller = CANController("node")
        for _ in range(ERROR_PASSIVE_THRESHOLD // 8):
            controller.record_tx_error()
        assert controller.state is ControllerState.ERROR_PASSIVE

    def test_becomes_error_passive_on_rx_errors(self):
        controller = CANController("node")
        for _ in range(ERROR_PASSIVE_THRESHOLD):
            controller.record_rx_error()
        assert controller.state is ControllerState.ERROR_PASSIVE

    def test_becomes_bus_off_on_many_tx_errors(self):
        controller = CANController("node")
        for _ in range(BUS_OFF_THRESHOLD // 8):
            controller.record_tx_error()
        assert controller.state is ControllerState.BUS_OFF
        with pytest.raises(BusOffError):
            controller.check_transmit(CANFrame(can_id=0x1))

    def test_success_decrements_counters(self):
        controller = CANController("node")
        controller.record_tx_error()
        assert controller.tx_error_counter == 8
        for _ in range(8):
            controller.record_tx_success()
        assert controller.tx_error_counter == 0
        controller.record_tx_success()
        assert controller.tx_error_counter == 0

    def test_rx_success_decrements(self):
        controller = CANController("node")
        controller.record_rx_error()
        assert controller.rx_error_counter == 1
        controller.record_rx_success()
        assert controller.rx_error_counter == 0

    def test_reset_recovers_from_bus_off(self):
        controller = CANController("node")
        for _ in range(BUS_OFF_THRESHOLD // 8):
            controller.record_tx_error()
        controller.reset()
        assert controller.state is ControllerState.ERROR_ACTIVE
        assert controller.check_transmit(CANFrame(can_id=0x1))


class TestFiltersAndCompromise:
    def test_check_receive_counts(self):
        controller = CANController("node")
        controller.rx_filters.set_default_reject()
        controller.rx_filters.add_exact(0x10)
        assert controller.check_receive(CANFrame(can_id=0x10))
        assert not controller.check_receive(CANFrame(can_id=0x20))
        assert controller.frames_accepted == 1
        assert controller.frames_rejected == 1

    def test_check_transmit_uses_tx_filters(self):
        controller = CANController("node")
        controller.tx_filters.set_default_reject()
        controller.tx_filters.add_exact(0x10)
        assert controller.check_transmit(CANFrame(can_id=0x10))
        assert not controller.check_transmit(CANFrame(can_id=0x20))

    def test_compromise_bypasses_both_banks(self):
        controller = CANController("node")
        controller.rx_filters.set_default_reject()
        controller.tx_filters.set_default_reject()
        assert not controller.check_receive(CANFrame(can_id=0x99))
        assert not controller.check_transmit(CANFrame(can_id=0x99))
        controller.compromise()
        assert controller.compromised
        assert controller.check_receive(CANFrame(can_id=0x99))
        assert controller.check_transmit(CANFrame(can_id=0x99))
        controller.restore()
        assert not controller.compromised
        assert not controller.check_transmit(CANFrame(can_id=0x99))
