"""Tests for the individual vehicle ECU applications."""

import pytest

from repro.can.bus import CANBus
from repro.vehicle.door_locks import DoorLockController
from repro.vehicle.ecu import VehicleECU
from repro.vehicle.engine_ecu import EngineController
from repro.vehicle.eps import PowerSteeringController
from repro.vehicle.ev_ecu import ElectronicVehicleECU
from repro.vehicle.gateway import CANGateway
from repro.vehicle.infotainment import InfotainmentSystem
from repro.vehicle.messages import standard_catalog
from repro.vehicle.safety import SafetyCriticalController
from repro.vehicle.sensors import SensorCluster
from repro.vehicle.telematics import TelematicsUnit


@pytest.fixture()
def rig():
    """A bus with every ECU attached (no enforcement, no periodic traffic)."""
    catalog = standard_catalog()
    bus = CANBus(name="rig")
    ecus = {
        "ev_ecu": ElectronicVehicleECU(catalog),
        "eps": PowerSteeringController(catalog),
        "engine": EngineController(catalog),
        "sensors": SensorCluster(catalog),
        "telematics": TelematicsUnit(catalog),
        "infotainment": InfotainmentSystem(catalog),
        "door_locks": DoorLockController(catalog),
        "safety": SafetyCriticalController(catalog),
        "gateway": CANGateway(catalog),
    }
    for ecu in ecus.values():
        bus.attach(ecu.node)
    return bus, catalog, ecus


def run(bus: CANBus, duration: float = 0.05) -> None:
    bus.run(duration)


class TestEvEcu:
    def test_disable_and_enable(self, rig):
        bus, catalog, ecus = rig
        ev_ecu, safety = ecus["ev_ecu"], ecus["safety"]
        assert ev_ecu.propulsion_available
        safety.send_message("ECU_DISABLE", b"\x01")
        run(bus)
        assert not ev_ecu.propulsion_available
        assert ev_ecu.events_of_kind("disabled")
        safety.send_message("ECU_ENABLE", b"\x01")
        run(bus)
        assert ev_ecu.propulsion_available

    def test_sensor_state_tracking(self, rig):
        bus, catalog, ecus = rig
        ecus["sensors"].set_pedals(accel=120, brake=0)
        ecus["sensors"].send_message("SENSOR_ACCEL", bytes([120]))
        run(bus)
        assert ecus["ev_ecu"].sensor_state["accel"] == 120

    def test_firmware_update_frames_are_logged(self, rig):
        bus, catalog, ecus = rig
        ecus["telematics"].send_message("FIRMWARE_UPDATE", b"\x01")
        run(bus)
        assert ecus["ev_ecu"].firmware_updates_received == 1


class TestEpsAndEngine:
    def test_eps_deactivation(self, rig):
        bus, catalog, ecus = rig
        assert ecus["eps"].assisting
        ecus["safety"].send_message("EPS_DEACTIVATE", b"\x01")
        run(bus)
        assert not ecus["eps"].assisting

    def test_eps_diag_response(self, rig):
        bus, catalog, ecus = rig
        ecus["telematics"].send_message("DIAG_REQUEST", b"\x01")
        run(bus)
        assert any("diag-response" in entry for entry in ecus["gateway"].external_log)

    def test_engine_deactivation_and_rpm(self, rig):
        bus, catalog, ecus = rig
        engine = ecus["engine"]
        ecus["ev_ecu"].send_message("ECU_COMMAND", bytes([100, 0]))
        run(bus)
        assert engine.rpm > 800
        ecus["safety"].send_message("ENGINE_DEACTIVATE", b"\x01")
        run(bus)
        assert not engine.running

    def test_engine_modification_events(self, rig):
        bus, catalog, ecus = rig
        ecus["telematics"].send_message("FIRMWARE_UPDATE", b"\x01")
        run(bus)
        assert ecus["engine"].modification_events == 1


class TestSensorsAndSafety:
    def test_obstacle_detection_triggers_failsafe(self, rig):
        bus, catalog, ecus = rig
        sensors, safety = ecus["sensors"], ecus["safety"]
        sensors.set_proximity(10)
        assert sensors.detect_obstacle() is True
        run(bus)
        assert safety.failsafe_active

    def test_far_obstacle_does_not_trigger(self, rig):
        bus, catalog, ecus = rig
        ecus["sensors"].set_proximity(500)
        assert ecus["sensors"].detect_obstacle() is False

    def test_crash_detection_unlocks_and_calls(self, rig):
        bus, catalog, ecus = rig
        sensors, safety, door_locks, telematics = (
            ecus["sensors"], ecus["safety"], ecus["door_locks"], ecus["telematics"],
        )
        door_locks.locked = True
        sensors.set_pedals(accel=0, brake=255)
        sensors.set_proximity(10)
        sensors.send_message("SENSOR_BRAKE", bytes([255]))
        sensors.send_message("SENSOR_PROXIMITY", bytes([2]))
        run(bus)
        assert safety.failsafe_active
        assert safety.airbags_deployed
        assert not door_locks.locked
        assert telematics.emergency_calls_placed >= 1

    def test_alarm_triggered_by_door_opening(self, rig):
        bus, catalog, ecus = rig
        safety, door_locks = ecus["safety"], ecus["door_locks"]
        safety.arm_alarm()
        door_locks.send_message("DOOR_STATUS", bytes([0, 0]))
        run(bus)
        assert safety.alarm_triggered

    def test_alarm_disable_handling(self, rig):
        bus, catalog, ecus = rig
        ecus["safety"].arm_alarm()
        ecus["telematics"].send_message("ALARM_DISABLE", b"\x01")
        run(bus)
        assert not ecus["safety"].alarm_armed

    def test_gear_validation(self, rig):
        _, _, ecus = rig
        with pytest.raises(ValueError):
            ecus["sensors"].set_gear(7)


class TestDoorLocks:
    def test_lock_unlock_via_commands(self, rig):
        bus, catalog, ecus = rig
        door_locks = ecus["door_locks"]
        ecus["telematics"].send_message("DOOR_LOCK_CMD", b"\x01")
        run(bus)
        assert door_locks.locked
        ecus["telematics"].send_message("DOOR_UNLOCK_CMD", b"\x01")
        run(bus)
        assert not door_locks.locked
        assert door_locks.hazard_events == []

    def test_unlock_in_motion_is_a_hazard(self, rig):
        bus, catalog, ecus = rig
        door_locks = ecus["door_locks"]
        door_locks.locked = True
        door_locks.set_motion(True)
        ecus["telematics"].send_message("DOOR_UNLOCK_CMD", b"\x01")
        run(bus)
        assert "unlocked-in-motion" in door_locks.hazard_events

    def test_lock_during_accident_is_a_hazard(self, rig):
        bus, catalog, ecus = rig
        door_locks = ecus["door_locks"]
        ecus["safety"].declare_crash("test crash")
        run(bus)
        ecus["telematics"].send_message("DOOR_LOCK_CMD", b"\x01")
        run(bus)
        assert "locked-during-accident" in door_locks.hazard_events

    def test_arm_and_immobilise_disables_propulsion(self, rig):
        bus, catalog, ecus = rig
        assert ecus["door_locks"].arm_and_immobilise()
        run(bus)
        assert not ecus["ev_ecu"].propulsion_available


class TestTelematics:
    def test_modem_disable_blocks_emergency_calls(self, rig):
        bus, catalog, ecus = rig
        telematics = ecus["telematics"]
        ecus["infotainment"].send_message("MODEM_CONTROL", b"\x00")
        run(bus)
        assert not telematics.modem_enabled
        assert not telematics.place_emergency_call()
        assert telematics.events_of_kind("emergency-call-failed")

    def test_tracking_disable(self, rig):
        bus, catalog, ecus = rig
        # The disable command arrives from outside; emit it from a compromised
        # gateway (whose software transmit filter would normally stop it) to
        # exercise the telematics handler.
        ecus["gateway"].compromise_firmware()
        assert ecus["gateway"].send_raw(catalog.id_of("TRACKING_DISABLE"), b"\x01")
        run(bus)
        assert not ecus["telematics"].tracking_enabled

    def test_exfiltration_requires_compromise(self, rig):
        _, _, ecus = rig
        telematics = ecus["telematics"]
        assert not telematics.exfiltrate_position()
        telematics.compromise_firmware()
        assert telematics.exfiltrate_position()
        assert telematics.privacy_exfiltration_events == 1


class TestInfotainment:
    def test_status_display_updates(self, rig):
        bus, catalog, ecus = rig
        ecus["ev_ecu"].send_message("CAR_STATUS_DISPLAY", bytes([88, 2]))
        run(bus)
        assert ecus["infotainment"].displayed_status["speed"] == 88
        ecus["telematics"].send_message("GPS_POSITION", bytes([1, 2]))
        run(bus)
        assert ecus["infotainment"].displayed_gps == (1, 2)

    def test_install_without_enforcement_always_succeeds(self, rig):
        _, _, ecus = rig
        assert ecus["infotainment"].install_software("any-app")
        assert "any-app" in ecus["infotainment"].installed_packages

    def test_browser_exploit_compromises_firmware(self, rig):
        _, _, ecus = rig
        ecus["infotainment"].browser_exploit()
        assert ecus["infotainment"].firmware_compromised


class TestGatewayAndBase:
    def test_relay_allow_list(self, rig):
        bus, catalog, ecus = rig
        gateway = ecus["gateway"]
        assert gateway.relay_external_request("DIAG_REQUEST", b"\x01")
        assert not gateway.relay_external_request("ECU_DISABLE", b"\x01")
        assert gateway.refused_relays == 1

    def test_raw_relay_bypasses_allow_list_but_not_filters(self, rig):
        bus, catalog, ecus = rig
        gateway = ecus["gateway"]
        # The gateway's own software TX filter only allows its catalogue
        # messages, so a raw ECU_DISABLE relay is stopped at the node.
        assert not gateway.relay_raw_external(catalog.id_of("ECU_DISABLE"), b"\x01")

    def test_unknown_message_handler_registration_fails(self, rig):
        _, catalog, _ = rig
        ecu = VehicleECU("Gateway", catalog)
        with pytest.raises(KeyError):
            ecu.on_message("GHOST_MESSAGE", lambda frame: None)

    def test_periodic_broadcast_requires_attachment(self):
        catalog = standard_catalog()
        ecu = SensorCluster(catalog)
        with pytest.raises(RuntimeError):
            ecu.start_periodic_broadcasts()
