"""Tests for the vehicle message catalogue and car modes."""

import pytest

from repro.vehicle.messages import (
    ALL_NODES,
    NODE_EV_ECU,
    NODE_SAFETY,
    NODE_SENSORS,
    MessageCatalog,
    VehicleMessage,
    standard_catalog,
)
from repro.vehicle.modes import (
    ALLOWED_TRANSITIONS,
    CarMode,
    InvalidModeTransition,
    ModeManager,
)


class TestCarMode:
    def test_parse(self):
        assert CarMode.parse("normal") is CarMode.NORMAL
        assert CarMode.parse("Fail Safe") is CarMode.FAIL_SAFE
        assert CarMode.parse("remote_diagnostic") is CarMode.REMOTE_DIAGNOSTIC

    def test_parse_unknown(self):
        with pytest.raises(ValueError):
            CarMode.parse("turbo")

    def test_three_modes_match_paper(self):
        assert len(CarMode) == 3


class TestModeManager:
    def test_initial_mode_and_history(self):
        manager = ModeManager()
        assert manager.mode is CarMode.NORMAL
        assert manager.history == [CarMode.NORMAL]

    def test_allowed_transitions(self):
        manager = ModeManager()
        manager.enter_remote_diagnostic()
        assert manager.mode is CarMode.REMOTE_DIAGNOSTIC
        manager.return_to_normal()
        manager.enter_fail_safe()
        assert manager.mode is CarMode.FAIL_SAFE
        manager.return_to_normal()
        assert manager.history[-1] is CarMode.NORMAL

    def test_failsafe_cannot_go_to_diagnostic(self):
        manager = ModeManager(CarMode.FAIL_SAFE)
        assert not manager.can_transition(CarMode.REMOTE_DIAGNOSTIC)
        with pytest.raises(InvalidModeTransition):
            manager.transition(CarMode.REMOTE_DIAGNOSTIC)

    def test_transition_to_same_mode_is_noop(self):
        manager = ModeManager()
        events = []
        manager.add_listener(lambda previous, new: events.append((previous, new)))
        manager.transition(CarMode.NORMAL)
        assert events == []
        assert manager.history == [CarMode.NORMAL]

    def test_listeners_notified(self):
        manager = ModeManager()
        events = []
        manager.add_listener(lambda previous, new: events.append((previous, new)))
        manager.enter_fail_safe()
        assert events == [(CarMode.NORMAL, CarMode.FAIL_SAFE)]

    def test_transition_table_is_complete(self):
        assert set(ALLOWED_TRANSITIONS) == set(CarMode)


class TestVehicleMessage:
    def test_validation(self):
        with pytest.raises(ValueError):
            VehicleMessage(0x800, "X", ("A",), ())
        with pytest.raises(ValueError):
            VehicleMessage(0x10, " ", ("A",), ())
        with pytest.raises(ValueError):
            VehicleMessage(0x10, "X", (), ())

    def test_mode_applicability(self):
        message = VehicleMessage(
            0x10, "X", ("A",), ("B",), allowed_modes=(CarMode.FAIL_SAFE,)
        )
        assert message.allowed_in_mode(CarMode.FAIL_SAFE)
        assert not message.allowed_in_mode(CarMode.NORMAL)
        unrestricted = VehicleMessage(0x11, "Y", ("A",), ("B",))
        assert unrestricted.allowed_in_mode(CarMode.NORMAL)

    def test_frame_generation(self):
        message = VehicleMessage(0x10, "X", ("A",), ("B",))
        frame = message.frame(b"\x01", source="A")
        assert frame.can_id == 0x10
        assert frame.source == "A"


class TestStandardCatalog:
    def test_unique_ids_and_names(self, catalog):
        ids = [m.can_id for m in catalog]
        names = [m.name for m in catalog]
        assert len(set(ids)) == len(ids)
        assert len(set(names)) == len(names)
        assert len(catalog) >= 25

    def test_every_node_appears(self, catalog):
        nodes = set(catalog.nodes())
        for node in ALL_NODES:
            assert node in nodes

    def test_lookup_by_id_and_name(self, catalog):
        message = catalog.by_name("ECU_DISABLE")
        assert catalog.by_id(message.can_id) is message
        assert catalog.id_of("ECU_DISABLE") == message.can_id
        assert "ECU_DISABLE" in catalog
        assert message.can_id in catalog
        with pytest.raises(KeyError):
            catalog.by_name("GHOST")
        with pytest.raises(KeyError):
            catalog.by_id(0x7FE)

    def test_duplicate_registration_rejected(self, catalog):
        duplicate_id = VehicleMessage(catalog.id_of("ECU_DISABLE"), "OTHER", ("A",), ())
        fresh = MessageCatalog(list(catalog))
        with pytest.raises(ValueError):
            fresh.add(duplicate_id)
        duplicate_name = VehicleMessage(0x7F0, "ECU_DISABLE", ("A",), ())
        with pytest.raises(ValueError):
            fresh.add(duplicate_name)

    def test_ecu_disable_is_failsafe_only_and_safety_relevant(self, catalog):
        message = catalog.by_name("ECU_DISABLE")
        assert message.safety_relevant
        assert not message.allowed_in_mode(CarMode.NORMAL)
        assert message.allowed_in_mode(CarMode.FAIL_SAFE)
        assert NODE_EV_ECU in message.consumers
        assert NODE_SAFETY in message.producers

    def test_mode_scoped_views(self, catalog):
        normal_reads = set(catalog.read_ids_for(NODE_EV_ECU, CarMode.NORMAL))
        failsafe_reads = set(catalog.read_ids_for(NODE_EV_ECU, CarMode.FAIL_SAFE))
        assert catalog.id_of("ECU_DISABLE") not in normal_reads
        assert catalog.id_of("ECU_DISABLE") in failsafe_reads
        assert catalog.id_of("SENSOR_ACCEL") in normal_reads

    def test_sensor_writes_are_sensor_messages_only(self, catalog):
        write_names = {catalog.by_id(i).name for i in catalog.write_ids_for(NODE_SENSORS)}
        assert "SENSOR_ACCEL" in write_names
        assert "ECU_DISABLE" not in write_names
        assert "ALARM_DISABLE" not in write_names

    def test_safety_relevant_subset(self, catalog):
        safety_messages = catalog.safety_relevant()
        assert any(m.name == "AIRBAG_DEPLOY" for m in safety_messages)
        assert all(m.safety_relevant for m in safety_messages)

    def test_arbitration_priorities_favour_safety_commands(self, catalog):
        assert catalog.id_of("ECU_DISABLE") < catalog.id_of("DIAG_REQUEST")
        assert catalog.id_of("SENSOR_BRAKE") < catalog.id_of("CAR_STATUS_DISPLAY")
