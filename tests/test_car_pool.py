"""Pooled vehicle reuse: a reset car is bit-identical to a fresh build.

The fleet hot path's biggest lifecycle saving -- one warm
:class:`~repro.vehicle.car.ConnectedCar` per enforcement configuration
per worker, rewound by :meth:`ConnectedCar.reset` between vehicles --
is only admissible if reuse is observationally invisible.  These tests
pin that contract: identical fleet fingerprints for fresh-built versus
pooled execution at 1 and 4 workers, pristine state after reset
(counters, inboxes, modes, rogue nodes, OTA'd policies), and the
:class:`~repro.casestudy.builder.CarPool` bookkeeping itself.
"""

import pytest

from repro.attacks.attacker import MaliciousNode
from repro.can.trace import TraceLevel
from repro.casestudy.builder import CarPool, CaseStudyBuilder
from repro.core.enforcement import EnforcementConfig
from repro.fleet.runner import FleetRunner
from repro.vehicle.modes import CarMode

SEED = 99


@pytest.fixture(scope="module")
def builder():
    return CaseStudyBuilder()


class TestConnectedCarReset:
    def test_reset_restores_pristine_counters_and_clock(self, builder):
        car = builder.build_car(
            EnforcementConfig.full(), start_periodic_traffic=True,
            trace_level=TraceLevel.COUNTERS,
        )
        car.drive(duration=0.2)
        assert car.bus.statistics.frames_transmitted > 0
        car.reset()
        assert car.scheduler.now == 0.0
        assert car.bus.statistics.frames_transmitted == 0
        assert len(car.bus.trace) == 0
        for ecu in car.ecus():
            assert ecu.node.counters.sent == 0
            assert ecu.node.counters.received == 0
            assert not ecu.node.inbox
            assert ecu.node.received_ids() == []
            assert ecu.events == []
            assert ecu.operational

    def test_reset_detaches_rogue_nodes_and_restores_firmware(self, builder):
        car = builder.build_car(EnforcementConfig.full())
        MaliciousNode(car, name="Rogue")
        car.sensors.compromise_firmware()
        assert "Rogue" in car.bus.node_names()
        car.reset()
        assert "Rogue" not in car.bus.node_names()
        assert set(car.bus.node_names()) == set(car.node_names())
        assert not car.sensors.firmware_compromised

    def test_reset_restores_mode_and_vehicle_state(self, builder):
        car = builder.build_car(EnforcementConfig.full())
        car.drive(duration=0.05)
        car.modes.enter_fail_safe()
        car.safety.declare_crash("test")
        car.run(0.05)
        car.reset()
        assert car.mode is CarMode.NORMAL
        assert car.modes.history == [CarMode.NORMAL]
        assert not car.safety.failsafe_active
        assert not car.door_locks.vehicle_in_motion
        assert all(car.health().values())

    def test_reset_rolls_back_ota_policy(self, builder):
        car = builder.build_car(EnforcementConfig.full())
        coordinator = car.enforcement_coordinator
        fitted = coordinator.policy
        coordinator.apply_policy(fitted.next_version("test rollout"), car)
        assert coordinator.policy is not fitted
        car.reset()
        assert coordinator.policy is fitted
        assert coordinator.sync_count == 1
        assert coordinator.policy_pushes == len(coordinator.engines)

    def test_reset_clears_engine_counters_and_tamper_logs(self, builder):
        car = builder.build_car(
            EnforcementConfig.hardware_only(), start_periodic_traffic=True
        )
        car.drive(duration=0.1)
        coordinator = car.enforcement_coordinator
        assert coordinator.total_hpe_decisions() > 0
        car.reset()
        assert coordinator.total_hpe_decisions() == 0
        for engine in coordinator.engines.values():
            # One successful update from the post-reset sync, like a
            # fresh fit; nothing older survives.
            assert len(engine.tamper_log) == 1
            assert engine.compiled_table is not None

    def test_unprotected_car_resets_too(self, builder):
        car = builder.build_car(None, start_periodic_traffic=True)
        car.drive(duration=0.1)
        car.reset()
        assert car.scheduler.now == 0.0
        assert car.infotainment.enforcement_point is None


class TestCarPool:
    def test_builds_once_per_configuration(self, builder):
        pool = CarPool(builder)
        first = pool.acquire(EnforcementConfig.full())
        second = pool.acquire(EnforcementConfig.full())
        assert first is second
        assert pool.builds == 1
        assert pool.reuses == 1

    def test_distinct_configurations_get_distinct_cars(self, builder):
        pool = CarPool(builder)
        full = pool.acquire(EnforcementConfig.full())
        hardware = pool.acquire(EnforcementConfig.hardware_only())
        unprotected = pool.acquire(None)
        assert len({id(full), id(hardware), id(unprotected)}) == 3
        assert len(pool) == 3

    def test_trace_level_is_part_of_the_key(self, builder):
        pool = CarPool(builder)
        counters = pool.acquire(None, trace_level=TraceLevel.COUNTERS)
        full = pool.acquire(None, trace_level=TraceLevel.FULL)
        assert counters is not full

    def test_clear_drops_cars(self, builder):
        pool = CarPool(builder)
        pool.acquire(None)
        pool.clear()
        assert len(pool) == 0


class TestPooledFleetDeterminism:
    @pytest.mark.parametrize("scenario", ["fleet_replay_storm", "mixed_ev_dos"])
    def test_pooled_matches_fresh_single_worker(self, scenario):
        fresh = FleetRunner(workers=1, reuse_cars=False).run(scenario, 24, seed=SEED)
        pooled = FleetRunner(workers=1, reuse_cars=True).run(scenario, 24, seed=SEED)
        assert fresh.fingerprint() == pooled.fingerprint()
        assert fresh.frames_transmitted == pooled.frames_transmitted
        assert fresh.frames_blocked == pooled.frames_blocked
        assert fresh.attacks_mitigated == pooled.attacks_mitigated

    def test_pooled_matches_fresh_across_worker_counts(self):
        reference = FleetRunner(workers=1, reuse_cars=False).run(
            "fleet_replay_storm", 24, seed=SEED
        )
        for workers in (1, 4):
            pooled = FleetRunner(workers=workers, reuse_cars=True).run(
                "fleet_replay_storm", 24, seed=SEED
            )
            assert pooled.fingerprint() == reference.fingerprint(), workers

    def test_compiled_and_object_paths_agree_pooled(self):
        compiled = FleetRunner(workers=1, reuse_cars=True, compile_tables=True).run(
            "staggered_ota_rollout", 16, seed=SEED
        )
        object_path = FleetRunner(workers=1, reuse_cars=True, compile_tables=False).run(
            "staggered_ota_rollout", 16, seed=SEED
        )
        assert compiled.fingerprint() == object_path.fingerprint()

    def test_build_seconds_split_out_of_wall_seconds(self):
        result = FleetRunner(workers=1, reuse_cars=False).run(
            "baseline_cruise", 6, seed=SEED
        )
        assert result.build_wall_seconds > 0.0
        assert result.simulation_wall_seconds > 0.0
        assert result.sim_vehicles_per_second >= result.vehicles_per_second
        assert 0.0 < result.build_fraction < 1.0
