"""Fleet-level equivalence across trace retention levels.

The fleet fingerprint covers every deterministic per-vehicle field; the
tentpole contract is that the trace retention level (and the bounded
inbox that rides along with it) changes only where time and memory go,
never what the simulation computes.
"""

import pytest

from repro.can.trace import TraceLevel
from repro.fleet import FleetRunner
from repro.fleet.runner import DEFAULT_FLEET_INBOX_LIMIT, simulate_vehicle
from repro.fleet.scenarios import get_scenario

SEED = 77
VEHICLES = 6


@pytest.mark.parametrize("scenario", ["fleet_replay_storm", "mixed_ev_dos"])
def test_fleet_fingerprint_identical_across_trace_levels(scenario):
    results = {}
    for level in TraceLevel:
        runner = FleetRunner(workers=1, trace_level=level)
        results[level] = runner.run(scenario, VEHICLES, seed=SEED)
    fingerprints = {r.fingerprint() for r in results.values()}
    assert len(fingerprints) == 1
    reference = results[TraceLevel.FULL]
    for result in results.values():
        assert result.frames_transmitted == reference.frames_transmitted
        assert result.frames_blocked == reference.frames_blocked
        assert result.attacks_attempted == reference.attacks_attempted
        assert result.attacks_mitigated == reference.attacks_mitigated
        assert result.latency_p50_s == reference.latency_p50_s
        assert result.latency_p99_s == reference.latency_p99_s


def test_runner_accepts_string_trace_level():
    runner = FleetRunner(workers=1, trace_level="ring")
    assert runner.trace_level is TraceLevel.RING
    with pytest.raises(ValueError):
        FleetRunner(workers=1, trace_level="verbose")


def test_simulate_vehicle_inbox_limit_does_not_change_outcome():
    spec = get_scenario("fleet_replay_storm").vehicle_specs(1, SEED)[0]
    bounded = simulate_vehicle(spec, trace_level="counters", inbox_limit=DEFAULT_FLEET_INBOX_LIMIT)
    unbounded = simulate_vehicle(spec, trace_level="full", inbox_limit=None)
    assert bounded.deterministic_tuple() == unbounded.deterministic_tuple()
