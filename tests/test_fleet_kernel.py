"""Tests for the fleet simulation kernel (ordering, determinism, streams)."""

import random

import pytest

from repro.fleet.kernel import FleetKernel, derive_seed


class TestEventOrdering:
    def test_events_run_in_time_order(self):
        kernel = FleetKernel(seed=1)
        order = []
        kernel.schedule(0.3, lambda k, c: order.append("c"))
        kernel.schedule(0.1, lambda k, c: order.append("a"))
        kernel.schedule(0.2, lambda k, c: order.append("b"))
        kernel.run()
        assert order == ["a", "b", "c"]

    def test_equal_times_run_in_scheduling_order(self):
        kernel = FleetKernel(seed=1)
        order = []
        for tag in ("first", "second", "third"):
            kernel.schedule(0.5, lambda k, c, t=tag: order.append(t))
        kernel.run()
        assert order == ["first", "second", "third"]

    def test_actions_may_schedule_followups(self):
        kernel = FleetKernel(seed=1)
        seen = []

        def chain(k, c):
            seen.append(k.now)
            if k.now < 0.3:
                k.schedule_after(0.1, chain)

        kernel.schedule(0.1, chain)
        kernel.run()
        assert seen == [pytest.approx(0.1), pytest.approx(0.2), pytest.approx(0.3)]

    def test_cannot_schedule_into_the_past(self):
        kernel = FleetKernel(seed=1)
        kernel.schedule(0.2, lambda k, c: None)
        kernel.run()
        assert kernel.now == pytest.approx(0.2)
        with pytest.raises(ValueError):
            kernel.schedule(0.1, lambda k, c: None)
        with pytest.raises(ValueError):
            kernel.schedule_after(-0.1, lambda k, c: None)

    def test_until_bounds_the_clock_and_keeps_the_rest_queued(self):
        kernel = FleetKernel(seed=1)
        ran = []
        kernel.schedule(0.1, lambda k, c: ran.append(0.1))
        kernel.schedule(0.5, lambda k, c: ran.append(0.5))
        executed = kernel.run(until=0.2)
        assert executed == 1
        assert ran == [0.1]
        assert kernel.now == pytest.approx(0.2)
        assert kernel.pending_events == 1

    def test_context_is_passed_to_actions(self):
        kernel = FleetKernel(seed=1)
        seen = []
        kernel.schedule(0.0, lambda k, c: seen.append(c))
        kernel.run(context="the-car")
        assert seen == ["the-car"]
        assert kernel.processed_events == 1


class TestSeededStreams:
    def test_derive_seed_is_stable_and_name_sensitive(self):
        assert derive_seed(42, "vehicle-1") == derive_seed(42, "vehicle-1")
        assert derive_seed(42, "vehicle-1") != derive_seed(42, "vehicle-2")
        assert derive_seed(42, "vehicle-1") != derive_seed(43, "vehicle-1")

    def test_streams_reproduce_across_kernel_instances(self):
        draws_a = [FleetKernel(seed=7).stream("fuzz").random() for _ in range(3)]
        draws_b = [FleetKernel(seed=7).stream("fuzz").random() for _ in range(3)]
        assert draws_a == draws_b

    def test_streams_are_independent_of_draw_order(self):
        kernel_a = FleetKernel(seed=7)
        kernel_a.stream("noise").random()  # disturb another stream first
        value_a = kernel_a.stream("fuzz").random()
        value_b = FleetKernel(seed=7).stream("fuzz").random()
        assert value_a == value_b

    def test_stream_is_cached_per_name(self):
        kernel = FleetKernel(seed=7)
        assert kernel.stream("fuzz") is kernel.stream("fuzz")
        assert isinstance(kernel.stream("fuzz"), random.Random)
