"""Tests for the textual policy language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.dsl import (
    PolicySyntaxError,
    parse_condition,
    parse_policy,
    parse_rule,
    render_policy,
)
from repro.core.policy import (
    AccessRule,
    Direction,
    PolicyCondition,
    RuleEffect,
    SecurityPolicy,
)
from repro.vehicle.modes import CarMode


class TestParseRule:
    def test_simple_deny(self):
        rule = parse_rule("P-1: deny EV-ECU read ECU_DISABLE")
        assert rule.rule_id == "P-1"
        assert rule.effect is RuleEffect.DENY
        assert rule.node == "EV-ECU"
        assert rule.direction is Direction.READ
        assert rule.messages == ("ECU_DISABLE",)
        assert rule.condition.is_unconditional

    def test_rule_with_condition_and_comment(self):
        rule = parse_rule(
            "P-2: deny DoorLocks read DOOR_UNLOCK_CMD when in-motion no-accident # T13"
        )
        assert rule.condition.in_motion is True
        assert rule.condition.accident is False
        assert rule.derived_from == "T13"

    def test_rule_with_mode_condition(self):
        rule = parse_rule("P-3: allow DoorLocks write ECU_DISABLE when mode=normal stationary")
        assert rule.effect is RuleEffect.ALLOW
        assert rule.condition.modes == frozenset({CarMode.NORMAL})
        assert rule.condition.in_motion is False

    def test_multiple_messages(self):
        rule = parse_rule("P-4: deny Infotainment write ECU_DISABLE,EPS_DEACTIVATE")
        assert rule.messages == ("ECU_DISABLE", "EPS_DEACTIVATE")

    def test_default_rule_id(self):
        rule = parse_rule("deny EV-ECU read ECU_DISABLE", default_rule_id="R001")
        assert rule.rule_id == "R001"

    @pytest.mark.parametrize(
        "bad_line",
        [
            "P-1: explode EV-ECU read X",          # unknown effect
            "P-1: deny EV-ECU sideways X",          # unknown direction
            "P-1: deny EV-ECU read",                # missing messages
            "P-1: deny EV-ECU read X if sunny",     # missing 'when'
            "P-1: deny EV-ECU read X when mode=warp",  # unknown mode
            "P-1: deny EV-ECU read X when flying",  # unknown condition token
            "deny EV-ECU read X",                   # no id and no default
        ],
    )
    def test_syntax_errors(self, bad_line):
        with pytest.raises(PolicySyntaxError):
            parse_rule(bad_line)


class TestParseCondition:
    def test_all_tokens(self):
        condition = parse_condition(
            ["mode=normal,fail-safe", "stationary", "alarm-armed", "no-accident"]
        )
        assert condition.modes == frozenset({CarMode.NORMAL, CarMode.FAIL_SAFE})
        assert condition.in_motion is False
        assert condition.alarm_armed is True
        assert condition.accident is False

    def test_empty_tokens(self):
        assert parse_condition([]).is_unconditional


class TestParsePolicy:
    def test_document_with_header_and_comments(self):
        text = """
        policy connected-car v3
        # a comment line

        P-T01-1: deny EV-ECU read ECU_DISABLE when mode=normal in-motion # T01
        P-T13-1: deny DoorLocks read DOOR_UNLOCK_CMD when in-motion
        """
        policy = parse_policy(text)
        assert policy.name == "connected-car"
        assert policy.version == 3
        assert len(policy) == 2
        assert policy.rule("P-T01-1").derived_from == "T01"

    def test_line_numbers_in_errors(self):
        with pytest.raises(PolicySyntaxError) as excinfo:
            parse_policy("policy p v1\nP-1: nonsense line here\n")
        assert "line 2" in str(excinfo.value)

    def test_bad_version_rejected(self):
        with pytest.raises(PolicySyntaxError):
            parse_policy("policy p vNaN\n")

    def test_rules_without_ids_get_sequential_defaults(self):
        policy = parse_policy("deny EV-ECU read ECU_DISABLE\ndeny EPS read EPS_DEACTIVATE\n")
        assert [r.rule_id for r in policy.access_rules] == ["R001", "R002"]


class TestRoundTrip:
    def test_render_parse_roundtrip_preserves_rules(self):
        policy = SecurityPolicy("round-trip", version=2)
        policy.add_rule(
            AccessRule(
                "P-1", RuleEffect.DENY, "EV-ECU", Direction.READ, ("ECU_DISABLE",),
                condition=PolicyCondition(
                    modes=frozenset({CarMode.NORMAL}), in_motion=True
                ),
                derived_from="T01",
            )
        )
        policy.add_rule(
            AccessRule(
                "P-2", RuleEffect.ALLOW, "DoorLocks", Direction.WRITE, ("ECU_DISABLE",),
                condition=PolicyCondition(in_motion=False, alarm_armed=True),
            )
        )
        parsed = parse_policy(render_policy(policy))
        assert parsed.name == policy.name
        assert parsed.version == policy.version
        assert len(parsed) == len(policy)
        for original in policy.access_rules:
            restored = parsed.rule(original.rule_id)
            assert restored.effect == original.effect
            assert restored.node == original.node
            assert restored.direction == original.direction
            assert restored.messages == original.messages
            assert restored.condition == original.condition
            assert restored.derived_from == original.derived_from

    node_names = st.sampled_from(["EV-ECU", "EPS", "DoorLocks", "Telematics", "*"])
    message_names = st.lists(
        st.sampled_from(["ECU_DISABLE", "EPS_DEACTIVATE", "DOOR_LOCK_CMD", "MODEM_CONTROL"]),
        min_size=1, max_size=3, unique=True,
    )

    @given(
        effect=st.sampled_from(list(RuleEffect)),
        node=node_names,
        direction=st.sampled_from(list(Direction)),
        messages=message_names,
        modes=st.frozensets(st.sampled_from(list(CarMode)), max_size=2),
        in_motion=st.one_of(st.none(), st.booleans()),
        alarm_armed=st.one_of(st.none(), st.booleans()),
        accident=st.one_of(st.none(), st.booleans()),
    )
    def test_arbitrary_rule_roundtrip(
        self, effect, node, direction, messages, modes, in_motion, alarm_armed, accident
    ):
        rule = AccessRule(
            rule_id="P-X",
            effect=effect,
            node=node,
            direction=direction,
            messages=tuple(messages),
            condition=PolicyCondition(
                modes=modes, in_motion=in_motion, alarm_armed=alarm_armed, accident=accident
            ),
        )
        policy = SecurityPolicy("fuzz", access_rules=[rule])
        restored = parse_policy(render_policy(policy)).rule("P-X")
        assert restored.effect == rule.effect
        assert restored.node == rule.node
        assert restored.direction == rule.direction
        assert restored.messages == rule.messages
        assert restored.condition == rule.condition
