"""Tests for :class:`repro.api.session.FleetSession`: streaming outcomes,
batch/legacy equivalence, config sweeps and the session lifecycle."""

import gc
import json
import warnings
import weakref

import pytest

from repro.api import ExperimentConfig, FleetSession, run_experiment
from repro.api.cli import main as cli_main
from repro.fleet.runner import FleetRunner
from repro.fleet.scenarios import VehicleAction, VehicleSpec

SMALL_FLEET = 16


def _legacy_result(workers, scenario="mixed_ev_dos", vehicles=SMALL_FLEET, seed=42, **kwargs):
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        return FleetRunner(workers=workers, **kwargs).run(scenario, vehicles, seed=seed)


class TestRun:
    def test_run_matches_legacy_at_one_and_four_workers(self):
        config = ExperimentConfig(scenario="mixed_ev_dos", vehicles=SMALL_FLEET, seed=42)
        serial = FleetSession(config).run()
        with FleetSession(config.with_overrides(workers=4, chunk_size=2)) as session:
            parallel = session.run()
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.fingerprint() == _legacy_result(1).fingerprint()
        assert serial.fingerprint() == _legacy_result(4, chunk_size=2).fingerprint()
        assert serial.vehicles == SMALL_FLEET

    def test_run_experiment_one_shot(self):
        config = ExperimentConfig(scenario="baseline_cruise", vehicles=4, seed=1)
        assert run_experiment(config).fingerprint() == FleetSession(config).run().fingerprint()

    def test_config_type_is_checked(self):
        with pytest.raises(TypeError, match="ExperimentConfig"):
            FleetSession({"scenario": "x"})

    def test_unknown_scenario_surfaces_at_run_time(self):
        session = FleetSession(ExperimentConfig(scenario="not_registered", vehicles=2))
        with pytest.raises(KeyError, match="no registered scenario"):
            session.run()

    def test_scenario_parameters_reach_parameter_aware_scripts(self):
        from repro.fleet.scenarios import FleetScenario, temporary_scenario

        def scripted(index, rng, params):
            return (VehicleAction(0.0, "drive", {"accel": params["accel"]}),)

        scenario = FleetScenario(
            name="param_session_test",
            description="parameter-aware",
            duration_s=0.1,
            mix=(("hpe+selinux", 1.0),),
            script=scripted,
            parameters=(("accel", 30),),
        )
        base = ExperimentConfig(scenario="param_session_test", vehicles=3, seed=4)
        tuned = base.with_overrides(scenario_parameters={"accel": 90})
        with temporary_scenario(scenario):
            base_specs = FleetSession(base).vehicle_specs()
            tuned_specs = FleetSession(tuned).vehicle_specs()
        assert all(spec.actions[0].param("accel") == 30 for spec in base_specs)
        assert all(spec.actions[0].param("accel") == 90 for spec in tuned_specs)

    def test_enforcement_override_replaces_the_mix(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos", vehicles=8, seed=3, enforcement="unprotected"
        )
        result = FleetSession(config).run()
        assert result.enforcement_mix == {"unprotected": 8}
        assert result.hpe_decisions == 0

    def test_closed_session_refuses_to_run(self):
        session = FleetSession(ExperimentConfig(scenario="baseline_cruise", vehicles=2))
        session.close()
        with pytest.raises(RuntimeError, match="closed"):
            session.run()

    def test_run_specs_accepts_custom_specs(self):
        specs = [
            VehicleSpec(
                vehicle_id=i,
                scenario="custom-unit",
                enforcement="hpe+selinux",
                seed=100 + i,
                duration_s=0.1,
                actions=(VehicleAction(0.0, "drive", {"accel": 50}),),
            )
            for i in (3, 1, 2)
        ]
        session = FleetSession(ExperimentConfig(scenario="custom-unit", vehicles=3))
        result = session.run_specs(specs, "custom-unit")
        assert result.vehicles == 3
        assert result.scenario == "custom-unit"
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            legacy = FleetRunner(workers=1).run_specs(specs, "custom-unit")
        assert result.fingerprint() == legacy.fingerprint()


class TestStreaming:
    def test_iter_outcomes_yields_in_vehicle_id_order(self):
        config = ExperimentConfig(
            scenario="fleet_replay_storm", vehicles=SMALL_FLEET, seed=5,
            workers=4, chunk_size=3,
        )
        with FleetSession(config) as session:
            ids = [outcome.vehicle_id for outcome in session.iter_outcomes()]
            streamed = session.last_result
        assert ids == list(range(SMALL_FLEET))
        assert streamed.vehicles == SMALL_FLEET
        assert streamed.fingerprint() == FleetSession(config.with_overrides(workers=1)).run().fingerprint()

    def test_last_result_is_none_until_the_stream_completes(self):
        config = ExperimentConfig(scenario="baseline_cruise", vehicles=4, seed=2)
        session = FleetSession(config)
        session.run()
        stream = session.iter_outcomes()
        next(stream)
        assert session.last_result is None  # reset for the new stream
        for _ in stream:
            pass
        assert session.last_result is not None

    def test_slow_consumer_gets_backpressure_not_a_buffered_fleet(self):
        """Chunk submission is windowed: a consumer slower than the
        workers must not cause completed outcomes to pile up in the
        parent (``Pool.imap`` would buffer them without limit)."""
        import time

        vehicles, chunk = 240, 8
        config = ExperimentConfig(
            scenario="baseline_cruise", vehicles=vehicles, seed=6,
            workers=4, chunk_size=chunk,
        )
        refs, max_alive = [], 0
        with FleetSession(config) as session:
            for outcome in session.iter_outcomes():
                refs.append(weakref.ref(outcome))
                time.sleep(0.002)  # slower than the workers produce
                if outcome.vehicle_id % 40 == 0:
                    gc.collect()
                    max_alive = max(
                        max_alive, sum(1 for ref in refs if ref() is not None)
                    )
        # In-flight window is workers + 2 chunks; allow one extra chunk
        # of slack for references still on the stack.
        assert max_alive <= (config.workers + 3) * chunk

    def test_abandoned_stream_leaves_last_result_none(self):
        config = ExperimentConfig(scenario="baseline_cruise", vehicles=4, seed=2)
        session = FleetSession(config)
        session.run()
        assert session.last_result is not None
        stream = session.iter_outcomes()  # resets last_result eagerly
        assert session.last_result is None
        next(stream)
        stream.close()  # abandon mid-stream
        assert session.last_result is None

    def test_first_vehicle_id_offsets_the_stream(self):
        config = ExperimentConfig(
            scenario="baseline_cruise", vehicles=4, seed=2, first_vehicle_id=100
        )
        ids = [o.vehicle_id for o in FleetSession(config).iter_outcomes()]
        assert ids == [100, 101, 102, 103]


class TestRunMatrix:
    def test_matrix_shares_the_session_and_matches_individual_runs(self):
        base = ExperimentConfig(scenario="baseline_cruise", vehicles=6, seed=9)
        with FleetSession(base) as session:
            results = session.run_matrix(
                [
                    {"scenario": "fleet_replay_storm"},
                    {"scenario": "fuzz_probe", "seed": 10},
                    base.with_overrides(vehicles=4),
                ]
            )
        assert [config.scenario for config, _ in results] == [
            "fleet_replay_storm",
            "fuzz_probe",
            "baseline_cruise",
        ]
        for config, result in results:
            assert result.vehicles == config.vehicles
            assert result.fingerprint() == FleetSession(config).run().fingerprint()

    def test_matrix_rejects_stray_entry_types(self):
        session = FleetSession(ExperimentConfig(scenario="baseline_cruise", vehicles=2))
        with pytest.raises(TypeError, match="run_matrix entries"):
            session.run_matrix(["baseline_cruise"])


class TestStreamingAcceptance:
    """The tentpole acceptance: a 2,000-vehicle ``fleet_replay_storm``
    run streams with bounded memory and every surface -- streamed
    session, batch session, legacy runner at 1 and 4 workers, and the
    ``python -m repro`` CLI -- produces one bit-identical fingerprint."""

    SCENARIO = "fleet_replay_storm"
    VEHICLES = 2000
    SEED = 2018

    @pytest.fixture(scope="class")
    def config(self):
        return ExperimentConfig(
            scenario=self.SCENARIO, vehicles=self.VEHICLES, seed=self.SEED,
            workers=4,
        )

    @pytest.fixture(scope="class")
    def streamed(self, config):
        """Stream the fleet, tracking how many yielded outcomes stay alive."""
        refs, max_alive, count = [], 0, 0
        with FleetSession(config) as session:
            last_id = -1
            for outcome in session.iter_outcomes():
                assert outcome.vehicle_id > last_id
                last_id = outcome.vehicle_id
                refs.append(weakref.ref(outcome))
                count += 1
                if count % 200 == 0:
                    gc.collect()
                    max_alive = max(
                        max_alive, sum(1 for ref in refs if ref() is not None)
                    )
            result = session.last_result
        return result, max_alive, count

    def test_streams_every_vehicle_without_materialising_the_fleet(self, streamed):
        result, max_alive, count = streamed
        assert count == self.VEHICLES
        assert result.vehicles == self.VEHICLES
        # Bounded memory: at any sampled instant, only the chunk in
        # flight (default 2000/16 = 125 vehicles) plus pool-buffered
        # chunks are alive -- nowhere near the 2,000-outcome list the
        # batch aggregator used to hold.
        assert max_alive < self.VEHICLES // 4

    def test_stream_is_bit_identical_to_batch_and_legacy(self, streamed, config):
        result, _, _ = streamed
        with FleetSession(config) as session:
            batch = session.run()
        assert result.fingerprint() == batch.fingerprint()
        assert result.fingerprint() == _legacy_result(
            1, scenario=self.SCENARIO, vehicles=self.VEHICLES, seed=self.SEED
        ).fingerprint()
        assert result.fingerprint() == _legacy_result(
            4, scenario=self.SCENARIO, vehicles=self.VEHICLES, seed=self.SEED
        ).fingerprint()

    def test_cli_reproduces_the_same_fingerprint(self, streamed, config, tmp_path, capsys):
        result, _, _ = streamed
        report = tmp_path / "fleet.json"
        exit_code = cli_main(config.cli_arguments() + ["--json", str(report)])
        capsys.readouterr()
        assert exit_code == 0
        payload = json.loads(report.read_text())
        assert payload["fingerprint"] == result.fingerprint()
        assert ExperimentConfig.from_dict(payload["config"]) == config
