"""Fault-tolerant fleet execution: retry, recovery, degradation, injection.

The invariant everything here leans on: a chunk is a pure function of
its specs, so *any* recovery action -- a retry on a surviving worker, a
shm->pickle downgrade, an inline fallback in the parent -- produces
bit-identical outcomes, and the final :class:`FleetResult` fingerprint
matches the fault-free run exactly.  The fault-injection harness is
itself deterministic, so the chaos replays too.
"""

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ExperimentConfig, FleetSession
from repro.fleet.resilience import (
    FAULT_KINDS,
    ChunkFailedError,
    CircuitBreaker,
    FaultEvent,
    FaultPlan,
    InjectedFaultError,
    RetryPolicy,
    apply_worker_fault,
)
from repro.fleet.transfer import SHM_AVAILABLE, shm_segment_names
from repro.obs import clock

#: Small-and-fast fault-test fleet: 8 chunks of 6 cheap vehicles.
VEHICLES = 48
CHUNK = 6


def _config(**overrides) -> ExperimentConfig:
    base = dict(
        scenario="baseline_cruise",
        vehicles=VEHICLES,
        seed=7,
        workers=4,
        chunk_size=CHUNK,
        chunk_timeout_s=2.0,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def _fingerprint(config: ExperimentConfig, plan: FaultPlan | None = None) -> str:
    with FleetSession(config, fault_plan=plan) as session:
        return session.run().fingerprint()


def _settle_orphans(session: FleetSession, rounds: int = 100) -> None:
    """Wait for straggler workers so their segments can be swept."""
    for _ in range(rounds):
        session._sweep_orphans()
        if not session._orphan_results:
            return
        clock.sleep(0.05)


class TestRetryPolicy:
    def test_delay_is_deterministic(self):
        policy = RetryPolicy()
        a = policy.backoff_delay(seed=3, chunk_index=5, attempt=2)
        b = policy.backoff_delay(seed=3, chunk_index=5, attempt=2)
        assert a == b

    def test_delay_varies_with_the_stream_name(self):
        policy = RetryPolicy()
        assert policy.backoff_delay(3, 5, 2) != policy.backoff_delay(3, 6, 2)
        assert policy.backoff_delay(3, 5, 2) != policy.backoff_delay(4, 5, 2)

    def test_base_grows_exponentially_and_caps(self):
        policy = RetryPolicy(
            backoff_base_s=0.1, backoff_factor=2.0, backoff_max_s=0.5, jitter=0.0
        )
        assert policy.backoff_delay(0, 0, 1) == pytest.approx(0.1)
        assert policy.backoff_delay(0, 0, 2) == pytest.approx(0.2)
        assert policy.backoff_delay(0, 0, 4) == pytest.approx(0.5)  # capped

    def test_jitter_only_shrinks_the_delay(self):
        policy = RetryPolicy(backoff_base_s=0.1, jitter=0.5)
        for attempt in range(1, 6):
            delay = policy.backoff_delay(11, 2, attempt)
            base = min(policy.backoff_max_s, 0.1 * 2.0 ** (attempt - 1))
            assert base * 0.5 <= delay <= base

    def test_validation(self):
        with pytest.raises(ValueError, match="max_attempts"):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ValueError, match="jitter"):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError, match="1-based"):
            RetryPolicy().backoff_delay(0, 0, 0)


class TestCircuitBreaker:
    def test_escalates_one_level_per_threshold_burst(self):
        breaker = CircuitBreaker(threshold=3)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.level == 1
        assert breaker.transfer_degraded and not breaker.inline_degraded
        for _ in range(3):
            breaker.record_failure()
        assert breaker.level == 2
        assert breaker.inline_degraded

    def test_success_resets_the_consecutive_count_not_the_level(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.level == 0
        breaker.record_failure()
        assert breaker.level == 1
        breaker.record_success()
        assert breaker.level == 1  # degradation is a ratchet within a run

    def test_disabled_breaker_counts_but_never_trips(self):
        breaker = CircuitBreaker(threshold=1, enabled=False)
        for _ in range(10):
            breaker.record_failure()
        assert breaker.level == 0
        assert breaker.total_failures == 10


class TestFaultPlan:
    def test_parse_single_event(self):
        plan = FaultPlan.parse("worker_crash:chunk=3")
        assert plan.events == (FaultEvent(kind="worker_crash", chunk=3),)

    def test_parse_multiple_events_with_fields(self):
        plan = FaultPlan.parse(
            "chunk_error:chunk=0,attempt=any;stall:chunk=2,seconds=1.5"
        )
        assert plan.events[0] == FaultEvent("chunk_error", 0, attempt=None)
        assert plan.events[1] == FaultEvent("stall", 2, seconds=1.5)

    def test_spec_round_trips(self):
        spec = "chunk_error:chunk=0,attempt=any;stall:chunk=2,seconds=1.5"
        assert FaultPlan.parse(FaultPlan.parse(spec).to_spec()) == FaultPlan.parse(spec)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "worker_crash",
            "worker_crash:attempt=1",
            "meteor_strike:chunk=1",
            "worker_crash:chunk=1,phase=late",
            "worker_crash:chunk=",
        ],
    )
    def test_bad_specs_raise(self, bad):
        with pytest.raises(ValueError):
            FaultPlan.parse(bad)

    def test_attempt_matching(self):
        plan = FaultPlan.parse("chunk_error:chunk=2,attempt=1")
        assert plan.worker_fault(2, 1) is not None
        assert plan.worker_fault(2, 0) is None
        assert plan.worker_fault(3, 1) is None
        persistent = FaultPlan.parse("chunk_error:chunk=2,attempt=any")
        assert persistent.worker_fault(2, 0) and persistent.worker_fault(2, 9)

    def test_parent_side_kinds_never_ship_to_workers(self):
        plan = FaultPlan.parse("shm_drop:chunk=1;consumer_stall:chunk=1")
        assert plan.worker_fault(1, 0) is None
        assert plan.fires("shm_drop", 1, 0) is not None
        assert plan.fires("consumer_stall", 1, 0) is not None

    def test_random_plan_is_a_pure_function_of_its_arguments(self):
        a = FaultPlan.random(seed=5, chunks=20)
        b = FaultPlan.random(seed=5, chunks=20)
        assert a == b
        assert a != FaultPlan.random(seed=6, chunks=20)
        for event in a.events:
            assert event.kind in FAULT_KINDS

    def test_events_are_picklable(self):
        import pickle

        event = FaultEvent("worker_crash", 3)
        assert pickle.loads(pickle.dumps(event)) == event

    def test_apply_worker_fault(self):
        apply_worker_fault(None)  # no-op
        with pytest.raises(InjectedFaultError, match="chunk=4"):
            apply_worker_fault(FaultEvent("chunk_error", 4))
        apply_worker_fault(FaultEvent("stall", 0, seconds=0.0))  # returns


class TestSessionWiring:
    def test_fault_plan_must_be_a_fault_plan(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            FleetSession(_config(), fault_plan="worker_crash:chunk=1")

    def test_exhausted_retries_raise_chunk_failed_without_degrade(self):
        plan = FaultPlan.parse("chunk_error:chunk=1,attempt=any")
        config = _config(retry=1, degrade=False)
        with FleetSession(config, fault_plan=plan) as session:
            with pytest.raises(ChunkFailedError, match="chunk 1 failed after 2"):
                session.run()

    def test_transient_fault_heals_on_the_first_retry(self):
        plan = FaultPlan.parse("chunk_error:chunk=1")  # attempt=0 only
        config = _config(retry=1, degrade=False)
        with FleetSession(config, fault_plan=plan, telemetry=True) as session:
            result = session.run()
            counters = dict(session.metrics_snapshot().counters)
        assert result.fingerprint() == _fingerprint(config)
        assert counters["resilience.retries"] == 1
        assert counters["resilience.chunk_failures"] == 1
        assert "resilience.degraded_chunks" not in counters

    def test_persistent_fault_degrades_to_inline(self):
        plan = FaultPlan.parse("chunk_error:chunk=1,attempt=any")
        config = _config(retry=1, degrade=True)
        with FleetSession(config, fault_plan=plan, telemetry=True) as session:
            result = session.run()
            counters = dict(session.metrics_snapshot().counters)
        assert result.fingerprint() == _fingerprint(config)
        assert counters["resilience.degraded_chunks"] == 1

    def test_breaker_downgrades_transfer_under_repeated_failures(self):
        # Three persistent chunk errors: the breaker trips shm->pickle
        # while retries are still being submitted, then the attempt
        # budgets exhaust into inline fallbacks -- the whole ladder.
        plan = FaultPlan.parse(
            "chunk_error:chunk=0,attempt=any;"
            "chunk_error:chunk=1,attempt=any;"
            "chunk_error:chunk=2,attempt=any"
        )
        config = _config(retry=2, degrade=True, spec_transfer="shm")
        with FleetSession(config, fault_plan=plan, telemetry=True) as session:
            result = session.run()
            counters = dict(session.metrics_snapshot().counters)
        assert result.fingerprint() == _fingerprint(config)
        assert counters["resilience.degraded_chunks"] == 3
        if SHM_AVAILABLE:
            assert counters.get("resilience.transfer_downgrades", 0) >= 1

    def test_backoff_delays_are_recorded(self):
        plan = FaultPlan.parse("chunk_error:chunk=0")
        with FleetSession(_config(), fault_plan=plan, telemetry=True) as session:
            session.run()
            snapshot = session.metrics_snapshot()
        histograms = dict(snapshot.histograms)
        assert "resilience.backoff_delay_seconds" in histograms


@pytest.mark.parametrize("workers", [1, 4])
@pytest.mark.parametrize("spec_transfer", ["shm", "pickle"])
@pytest.mark.parametrize(
    "spec",
    [
        "worker_crash:chunk=1",
        "chunk_error:chunk=2",
        "shm_drop:chunk=3",
        "stall:chunk=1,seconds=8.0",  # >> chunk_timeout_s: a hung worker
        "consumer_stall:chunk=2,seconds=0.2",
    ],
)
class TestFingerprintParityMatrix:
    """Every fault kind x worker count x transfer matches fault-free.

    ``workers=1`` runs take the inline path where infrastructure faults
    have nothing to strike -- included to pin that a FaultPlan never
    changes single-process results either.
    """

    def test_fingerprint_matches_fault_free(self, workers, spec_transfer, spec):
        config = _config(workers=workers, spec_transfer=spec_transfer)
        baseline = _fingerprint(config)
        assert _fingerprint(config, FaultPlan.parse(spec)) == baseline


class TestRandomSchedules:
    @settings(max_examples=5, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**31))
    def test_random_fault_schedules_preserve_the_fingerprint(self, seed):
        config = _config(vehicles=24, chunk_timeout_s=2.0)
        plan = FaultPlan.random(
            seed=seed,
            chunks=24 // CHUNK,
            kinds=("chunk_error", "shm_drop"),
            rate=0.5,
        )
        assert _fingerprint(config, plan) == _fingerprint(config)


@pytest.mark.skipif(not SHM_AVAILABLE, reason="POSIX shared memory unavailable")
class TestSegmentHygiene:
    def test_induced_failures_leak_no_segments(self):
        before = shm_segment_names()
        plan = FaultPlan.parse(
            "worker_crash:chunk=1;chunk_error:chunk=3,attempt=any;shm_drop:chunk=5"
        )
        config = _config(retry=1, degrade=True)
        with FleetSession(config, fault_plan=plan) as session:
            session.run()
            _settle_orphans(session)
        assert sorted(shm_segment_names() - before) == []

    def test_abandoned_stream_leaks_no_segments(self):
        before = shm_segment_names()
        with FleetSession(_config()) as session:
            stream = session.iter_outcomes()
            next(stream)
            stream.close()  # abandon with a full window in flight
            _settle_orphans(session)
        assert sorted(shm_segment_names() - before) == []

    def test_failed_run_leaks_no_segments(self):
        before = shm_segment_names()
        plan = FaultPlan.parse("chunk_error:chunk=2,attempt=any")
        config = _config(retry=0, degrade=False)
        with FleetSession(config, fault_plan=plan) as session:
            with pytest.raises(ChunkFailedError):
                session.run()
            _settle_orphans(session)
        assert sorted(shm_segment_names() - before) == []


class TestAcceptance:
    """The ISSUE's acceptance bar: a 4-worker, 500-vehicle run survives
    a mid-run worker crash with a bit-identical fingerprint and the
    recovery visible in ``resilience.*`` metrics."""

    def test_mid_run_worker_crash_recovers_bit_identically(self):
        config = ExperimentConfig(
            scenario="fleet_replay_storm",
            vehicles=500,
            seed=123,
            workers=4,
            chunk_timeout_s=3.0,
        )
        baseline = _fingerprint(config)
        plan = FaultPlan.parse("worker_crash:chunk=3")
        with FleetSession(config, fault_plan=plan, telemetry=True) as session:
            result = session.run()
            counters = dict(session.metrics_snapshot().counters)
        assert result.fingerprint() == baseline
        assert counters["resilience.worker_deaths"] >= 1
        assert counters["resilience.retries"] >= 1
        assert result.vehicles == 500


class TestTimeoutSemantics:
    def test_timeout_error_names_the_deadline(self):
        # A hung worker (stall >> timeout) with retries off and degrade
        # off surfaces as ChunkFailedError wrapping the timeout.
        plan = FaultPlan.parse("stall:chunk=0,seconds=8.0,attempt=any")
        config = _config(
            vehicles=12, chunk_timeout_s=0.5, retry=0, degrade=False
        )
        with FleetSession(config, fault_plan=plan) as session:
            with pytest.raises(ChunkFailedError, match="chunk_timeout_s"):
                session.run()

    def test_none_timeout_still_completes_fault_free(self):
        config = _config(chunk_timeout_s=None)
        assert _fingerprint(config) == _fingerprint(_config())
