"""Tests for assets, the asset registry and entry points."""

import pytest

from repro.threat.assets import Asset, AssetCategory, AssetRegistry, Criticality
from repro.threat.entry_points import (
    EntryPoint,
    EntryPointRegistry,
    Exposure,
    InterfaceKind,
)


def make_registry() -> AssetRegistry:
    registry = AssetRegistry()
    registry.add(Asset("EV-ECU", criticality=Criticality.SAFETY_CRITICAL))
    registry.add(Asset("Sensors", category=AssetCategory.SENSOR))
    registry.add(Asset("Engine", criticality=Criticality.SAFETY_CRITICAL))
    registry.add(Asset("Infotainment", category=AssetCategory.USER_INTERFACE,
                       criticality=Criticality.LOW))
    return registry


class TestAsset:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            Asset("  ")

    def test_defaults(self):
        asset = Asset("X")
        assert asset.category is AssetCategory.CONTROL_UNIT
        assert asset.criticality is Criticality.MEDIUM

    def test_criticality_ordering(self):
        assert Criticality.LOW < Criticality.SAFETY_CRITICAL
        assert Criticality.HIGH >= Criticality.MEDIUM


class TestAssetRegistry:
    def test_add_and_get(self):
        registry = make_registry()
        assert registry.get("EV-ECU").name == "EV-ECU"
        assert len(registry) == 4
        assert "Engine" in registry

    def test_duplicate_identical_is_idempotent(self):
        registry = AssetRegistry()
        asset = Asset("X")
        registry.add(asset)
        registry.add(Asset("X"))
        assert len(registry) == 1

    def test_duplicate_conflicting_rejected(self):
        registry = AssetRegistry()
        registry.add(Asset("X"))
        with pytest.raises(ValueError):
            registry.add(Asset("X", criticality=Criticality.LOW))

    def test_unknown_asset_raises(self):
        with pytest.raises(KeyError):
            make_registry().get("nope")

    def test_by_category_and_criticality(self):
        registry = make_registry()
        assert [a.name for a in registry.by_category(AssetCategory.SENSOR)] == ["Sensors"]
        critical = registry.by_minimum_criticality(Criticality.SAFETY_CRITICAL)
        assert {a.name for a in critical} == {"EV-ECU", "Engine"}

    def test_dependencies(self):
        registry = make_registry()
        registry.add_dependency("EV-ECU", "Sensors")
        registry.add_dependency("Engine", "Sensors")
        assert [a.name for a in registry.dependencies_of("EV-ECU")] == ["Sensors"]
        assert {a.name for a in registry.dependents_of("Sensors")} == {"EV-ECU", "Engine"}
        assert {a.name for a in registry.impact_set("Sensors")} == {"EV-ECU", "Engine"}

    def test_transitive_dependencies(self):
        registry = make_registry()
        registry.add_dependency("Infotainment", "EV-ECU")
        registry.add_dependency("EV-ECU", "Sensors")
        names = {a.name for a in registry.transitive_dependencies("Infotainment")}
        assert names == {"EV-ECU", "Sensors"}

    def test_dependency_cycle_rejected(self):
        registry = make_registry()
        registry.add_dependency("EV-ECU", "Sensors")
        with pytest.raises(ValueError):
            registry.add_dependency("Sensors", "EV-ECU")

    def test_self_dependency_rejected(self):
        registry = make_registry()
        with pytest.raises(ValueError):
            registry.add_dependency("EV-ECU", "EV-ECU")

    def test_dependency_requires_registered_assets(self):
        registry = make_registry()
        with pytest.raises(KeyError):
            registry.add_dependency("EV-ECU", "nope")

    def test_dependency_graph_is_a_copy(self):
        registry = make_registry()
        registry.add_dependency("EV-ECU", "Sensors")
        graph = registry.dependency_graph()
        graph.remove_edge("EV-ECU", "Sensors")
        assert [a.name for a in registry.dependencies_of("EV-ECU")] == ["Sensors"]


class TestEntryPoint:
    def test_requires_name(self):
        with pytest.raises(ValueError):
            EntryPoint(" ")

    def test_attack_surface_score_widens_without_authentication(self):
        authenticated = EntryPoint(
            "cell", InterfaceKind.NETWORK, Exposure.REMOTE,
            exposes=("ECU",), requires_authentication=True,
        )
        open_interface = EntryPoint(
            "cell2", InterfaceKind.NETWORK, Exposure.REMOTE,
            exposes=("ECU",), requires_authentication=False,
        )
        assert open_interface.attack_surface_score > authenticated.attack_surface_score

    def test_reach_scores_order(self):
        assert Exposure.REMOTE.reach_score > Exposure.PROXIMITY.reach_score
        assert Exposure.PROXIMITY.reach_score > Exposure.LOCAL.reach_score
        assert Exposure.LOCAL.reach_score > Exposure.INTERNAL.reach_score


class TestEntryPointRegistry:
    def make(self) -> EntryPointRegistry:
        registry = EntryPointRegistry()
        registry.add(
            EntryPoint("3G/4G/WiFi", InterfaceKind.NETWORK, Exposure.REMOTE,
                       exposes=("EV-ECU", "Door locks"))
        )
        registry.add(
            EntryPoint("Sensors", InterfaceKind.SENSOR, Exposure.LOCAL, exposes=("EV-ECU",))
        )
        registry.add(
            EntryPoint("Browser", InterfaceKind.USER_INTERFACE, Exposure.REMOTE,
                       exposes=("Infotainment",))
        )
        return registry

    def test_lookup(self):
        registry = self.make()
        assert registry.get("Sensors").kind is InterfaceKind.SENSOR
        assert "Browser" in registry
        assert len(registry) == 3
        with pytest.raises(KeyError):
            registry.get("nope")

    def test_exposing(self):
        registry = self.make()
        assert {ep.name for ep in registry.exposing("EV-ECU")} == {"3G/4G/WiFi", "Sensors"}

    def test_by_kind_and_exposure(self):
        registry = self.make()
        assert [ep.name for ep in registry.by_kind(InterfaceKind.NETWORK)] == ["3G/4G/WiFi"]
        assert {ep.name for ep in registry.by_exposure(Exposure.REMOTE)} == {
            "3G/4G/WiFi", "Browser",
        }

    def test_ranked_by_attack_surface(self):
        ranked = self.make().ranked_by_attack_surface()
        scores = [ep.attack_surface_score for ep in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_conflicting_duplicate_rejected(self):
        registry = self.make()
        with pytest.raises(ValueError):
            registry.add(EntryPoint("Sensors", InterfaceKind.DEBUG))
