"""Tests for the connected-car case-study dataset and builders."""

import pytest

from repro.casestudy.builder import CaseStudyBuilder, build_case_study_model, car_factory
from repro.casestudy.connected_car import (
    PAPER_DREAD_AVERAGES,
    TABLE1_ROWS,
    build_guideline_model,
    build_threat_model,
    build_threat_policy_entries,
    case_study_assets,
    case_study_entry_points,
    table1_threats,
)
from repro.core.enforcement import EnforcementConfig
from repro.threat.dread import RiskLevel


class TestTable1Data:
    def test_sixteen_rows(self):
        assert len(TABLE1_ROWS) == 16

    def test_dread_averages_match_paper(self):
        for row in TABLE1_ROWS:
            assert row.dread_average == pytest.approx(
                PAPER_DREAD_AVERAGES[row.threat_id], abs=0.05
            ), f"{row.threat_id} average mismatch"

    def test_seven_assets_plus_sensors(self):
        assets = {row.asset for row in TABLE1_ROWS}
        assert assets == {
            "EV-ECU", "EPS (Steering)", "Engine", "3G/4G/WiFi",
            "Infotainment System", "Door locks", "Safety Critical",
        }

    def test_policies_are_valid_permissions(self):
        assert {row.policy for row in TABLE1_ROWS} <= {"R", "W", "RW"}

    def test_highest_risk_row_is_lock_during_accident(self):
        worst = max(TABLE1_ROWS, key=lambda row: row.dread_average)
        assert worst.threat_id == "T14"
        assert worst.dread_average == pytest.approx(6.8)

    def test_lowest_risk_row_is_tracking_disable(self):
        best = min(TABLE1_ROWS, key=lambda row: row.dread_average)
        assert best.threat_id == "T03"


class TestThreatModel:
    def test_assets_and_entry_points(self):
        assert len(case_study_assets()) == 8
        assert len(case_study_entry_points()) == 11

    def test_threats_built_from_rows(self):
        threats = table1_threats()
        assert len(threats) == 16
        by_id = {t.identifier: t for t in threats}
        assert by_id["T01"].stride.letters == "STD"
        assert by_id["T07"].stride.letters == "STIDE"
        assert by_id["T16"].stride.letters == "TE"
        assert by_id["T14"].risk_level is RiskLevel.HIGH

    def test_model_is_internally_consistent(self):
        model = build_threat_model()
        assert len(model.threats) == 16
        assert len(model.assets) == 8
        # Every threat references registered entry points (enforced on add),
        # and only the sensor asset legitimately has no direct threat row.
        findings = model.validate()
        unthreatened = [f for f in findings if "no identified threats" in f]
        assert len(unthreatened) == 1 and "Sensors" in unthreatened[0]

    def test_summary_statistics(self):
        model = build_threat_model()
        summary = model.summary()
        assert summary["threats"] == 16
        assert 5.0 < summary["mean_dread_average"] < 6.5


class TestGuidelineBaseline:
    def test_guidelines_cover_a_subset_of_threats(self):
        model = build_guideline_model()
        threat_ids = [row.threat_id for row in TABLE1_ROWS]
        coverage = model.coverage(threat_ids)
        assert 0.4 < coverage < 1.0

    def test_paper_guidelines_present(self):
        texts = [g.text for g in build_guideline_model()]
        assert any("Limit components with CAN bus access" in t for t in texts)
        assert any("unauthorised software installation" in t for t in texts)


class TestBuilders:
    def test_case_study_model_is_deployable(self):
        model = build_case_study_model()
        assert model.is_deployable()
        assert model.policy_coverage() > 0.8
        assert model.guideline_coverage() > 0.0
        assert model.summary()["access_rules"] >= 25

    def test_uncovered_threats_are_only_the_documented_residual(self):
        model = build_case_study_model()
        assert model.uncovered_threats() == []

    def test_builder_reuses_one_policy(self, builder):
        first = builder.build_car(EnforcementConfig.full())
        second = builder.build_car(EnforcementConfig.full())
        assert first is not second
        assert (
            first.enforcement_coordinator.policy is second.enforcement_coordinator.policy
        )

    def test_factory_builds_fresh_cars(self):
        factory = car_factory(EnforcementConfig.hardware_only())
        car_a, car_b = factory(), factory()
        assert car_a is not car_b
        assert car_a.enforcement_coordinator.engines

    def test_unprotected_factory_has_no_coordinator(self, builder):
        car = builder.factory(None)()
        assert getattr(car, "enforcement_coordinator", None) is None

    def test_threshold_propagates_to_derivation(self):
        strict = CaseStudyBuilder(dread_threshold=6.5)
        assert len(strict.model.policy.access_rules) < 28
        assert strict.derivation.skipped_threats
