"""Tests for the attack primitives (attacker node, spoofing, tampering, DoS,
replay, fuzzing, firmware attacks) against unprotected and protected cars."""

import pytest

from repro.attacks.attacker import MaliciousNode, compromise_ecu
from repro.core.enforcement import EnforcementConfig
from repro.attacks.dos import BusFloodAttack, TargetedDisableAttack
from repro.attacks.firmware import FirmwareModificationAttack
from repro.attacks.fuzzing import FuzzingAttack
from repro.attacks.replay import ReplayAttack
from repro.attacks.spoofing import SpoofingAttack
from repro.attacks.tampering import SensorTamperingAttack, StatusTamperingAttack


class TestMaliciousNode:
    def test_inject_reaches_unprotected_applications(self, unprotected_car):
        attacker = MaliciousNode(unprotected_car)
        assert attacker.inject_message("ECU_DISABLE", b"\x01")
        unprotected_car.run(0.05)
        assert not unprotected_car.ev_ecu.propulsion_available
        assert attacker.frames_injected == 1

    def test_sniffing_broadcast_traffic(self, unprotected_car):
        attacker = MaliciousNode(unprotected_car)
        unprotected_car.start_periodic_traffic()
        unprotected_car.run(0.2)
        assert len(attacker.observed_frames()) > 0

    def test_detach(self, unprotected_car):
        attacker = MaliciousNode(unprotected_car)
        attacker.detach()
        assert attacker.name not in unprotected_car.bus.node_names()

    def test_compromise_ecu_helper(self, unprotected_car):
        ecu = compromise_ecu(unprotected_car.sensors)
        assert ecu.firmware_compromised


class TestSpoofing:
    def test_outside_spoof_succeeds_without_enforcement(self, unprotected_car):
        result = SpoofingAttack(unprotected_car, "ECU_DISABLE").from_malicious_node()
        assert result.reached_bus
        assert not unprotected_car.ev_ecu.propulsion_available

    def test_outside_spoof_blocked_by_hpe(self, protected_car):
        protected_car.drive(accel=50, duration=0.05)
        result = SpoofingAttack(protected_car, "ECU_DISABLE").from_malicious_node()
        # The rogue node has no HPE, so the frame reaches the bus, but the
        # EV-ECU's read filter refuses it.
        assert result.reached_bus
        assert protected_car.ev_ecu.propulsion_available

    def test_inside_spoof_blocked_at_write_filter(self, protected_car):
        protected_car.drive(accel=50, duration=0.05)
        result = SpoofingAttack(protected_car, "ECU_DISABLE").from_compromised_ecu(
            protected_car.sensors
        )
        assert not result.reached_bus
        assert protected_car.ev_ecu.propulsion_available

    def test_inside_spoof_succeeds_without_enforcement(self, unprotected_car):
        result = SpoofingAttack(unprotected_car, "ECU_DISABLE").from_compromised_ecu(
            unprotected_car.sensors
        )
        assert result.reached_bus
        assert not unprotected_car.ev_ecu.propulsion_available


class TestTampering:
    def test_sensor_tampering_misleads_engine(self, unprotected_car):
        result = SensorTamperingAttack(unprotected_car, "SENSOR_BRAKE", 255).execute()
        assert result.reached_bus
        assert unprotected_car.safety.last_brake == 255

    def test_status_tampering(self, unprotected_car):
        unprotected_car.infotainment.displayed_status["speed"] = 77
        result = StatusTamperingAttack(unprotected_car, forged_speed=0).execute_from("Sensors")
        assert result.reached_bus
        assert unprotected_car.infotainment.displayed_status["speed"] == 0


class TestDenialOfService:
    def test_targeted_disable_unprotected(self, unprotected_car):
        result = TargetedDisableAttack(unprotected_car, "EV-ECU").execute()
        assert result.target_disabled

    def test_targeted_disable_blocked_by_hpe(self, protected_car):
        protected_car.drive(accel=40, duration=0.05)
        result = TargetedDisableAttack(protected_car, "EV-ECU").execute()
        assert not result.target_disabled

    def test_unknown_target_rejected(self, unprotected_car):
        with pytest.raises(ValueError):
            TargetedDisableAttack(unprotected_car, "Nothing")

    def test_bus_flood_reduces_legitimate_share(self, builder):
        car = builder.build_car(None, start_periodic_traffic=True)
        car.run(0.1)
        result = BusFloodAttack(car).execute(frames=300, window_s=0.3)
        assert result.frames_on_bus == 300
        assert result.legitimate_delivery_ratio < 1.0


class TestReplay:
    def test_capture_and_replay(self, builder):
        car = builder.build_car(None, start_periodic_traffic=True)
        attack = ReplayAttack(car)
        captured = attack.capture(duration_s=0.3)
        assert captured > 0
        result = attack.replay()
        assert result.frames_replayed == captured
        assert result.reached_bus


class TestFuzzing:
    def test_fuzzing_is_contained_by_enforcement(self, builder):
        unprotected = builder.build_car(None)
        protected = builder.build_car(EnforcementConfig.full())
        unprotected_result = FuzzingAttack(unprotected, seed=99).execute(frames=150)
        protected_result = FuzzingAttack(protected, seed=99).execute(frames=150)
        assert unprotected_result.frames_sent == protected_result.frames_sent == 150
        # Whitelist enforcement delivers strictly less junk to applications.
        assert (
            protected_result.frames_delivered_to_applications
            < unprotected_result.frames_delivered_to_applications
        )
        assert protected_result.delivery_rate <= unprotected_result.delivery_rate

    def test_fuzzing_is_deterministic_per_seed(self, builder):
        first = FuzzingAttack(builder.build_car(None), seed=5).execute(frames=60)
        second = FuzzingAttack(builder.build_car(None), seed=5).execute(frames=60)
        assert first.distinct_ids_delivered == second.distinct_ids_delivered


class TestFirmwareAttacks:
    def test_radio_privacy_attack_blocked_by_selinux(self, protected_car):
        result = FirmwareModificationAttack(protected_car).radio_privacy_attack()
        assert not result.foothold_gained
        assert not result.objective_achieved

    def test_radio_privacy_attack_succeeds_unprotected(self, unprotected_car):
        result = FirmwareModificationAttack(unprotected_car).radio_privacy_attack()
        assert result.foothold_gained
        assert result.objective_achieved

    def test_infotainment_escalation_cannot_reconfigure_hpe(self, protected_car):
        result = FirmwareModificationAttack(protected_car).infotainment_escalation()
        assert result.foothold_gained           # the browser exploit itself works
        assert not result.hpe_reconfigured      # the HPE resists reconfiguration
        assert not result.objective_achieved    # and blocks the control frame
        assert protected_car.ev_ecu.propulsion_available

    def test_unauthorised_install_blocked_only_with_selinux(self, builder):
        protected = builder.build_car(EnforcementConfig.full())
        hardware_only = builder.build_car(EnforcementConfig.hardware_only())
        assert not FirmwareModificationAttack(protected).unauthorised_install().objective_achieved
        assert FirmwareModificationAttack(hardware_only).unauthorised_install().objective_achieved
