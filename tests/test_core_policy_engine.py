"""Tests for the policy evaluator (effective approved lists)."""

import pytest

from repro.core.policy import (
    AccessRule,
    CarSituation,
    Direction,
    PolicyCondition,
    RuleEffect,
    SecurityPolicy,
)
from repro.core.policy_engine import PolicyEvaluator
from repro.vehicle.messages import (
    NODE_DOOR_LOCKS,
    NODE_EV_ECU,
    NODE_SAFETY,
    NODE_SENSORS,
    standard_catalog,
)
from repro.vehicle.modes import CarMode


@pytest.fixture(scope="module")
def evaluator():
    return PolicyEvaluator(standard_catalog())


def empty_policy() -> SecurityPolicy:
    return SecurityPolicy("empty")


class TestBaseAllowance:
    def test_base_write_ids_follow_catalogue(self, evaluator, catalog):
        effective = evaluator.effective_for_node(
            NODE_SENSORS, empty_policy(), CarSituation()
        )
        assert catalog.id_of("SENSOR_ACCEL") in effective.write_ids
        assert catalog.id_of("ECU_DISABLE") not in effective.write_ids
        assert effective.may_write(catalog.id_of("SENSOR_BRAKE"))

    def test_base_read_ids_are_mode_scoped(self, evaluator, catalog):
        normal = evaluator.effective_for_node(
            NODE_EV_ECU, empty_policy(), CarSituation(mode=CarMode.NORMAL)
        )
        failsafe = evaluator.effective_for_node(
            NODE_EV_ECU, empty_policy(), CarSituation(mode=CarMode.FAIL_SAFE)
        )
        disable_id = catalog.id_of("ECU_DISABLE")
        assert disable_id not in normal.read_ids
        assert disable_id in failsafe.read_ids
        assert catalog.id_of("SENSOR_ACCEL") in normal.read_ids

    def test_diagnostic_messages_only_in_diagnostic_mode(self, evaluator, catalog):
        normal = evaluator.effective_for_node(
            NODE_EV_ECU, empty_policy(), CarSituation(mode=CarMode.NORMAL)
        )
        diagnostic = evaluator.effective_for_node(
            NODE_EV_ECU, empty_policy(), CarSituation(mode=CarMode.REMOTE_DIAGNOSTIC)
        )
        assert catalog.id_of("DIAG_REQUEST") not in normal.read_ids
        assert catalog.id_of("DIAG_REQUEST") in diagnostic.read_ids
        assert catalog.id_of("FIRMWARE_UPDATE") in diagnostic.read_ids


class TestRuleApplication:
    def test_deny_rule_removes_message(self, evaluator, catalog):
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule("P-1", RuleEffect.DENY, NODE_SAFETY, Direction.WRITE, ("ECU_DISABLE",))
        )
        failsafe = CarSituation(mode=CarMode.FAIL_SAFE)
        effective = evaluator.effective_for_node(NODE_SAFETY, policy, failsafe)
        assert catalog.id_of("ECU_DISABLE") not in effective.write_ids
        # Other fail-safe messages remain.
        assert catalog.id_of("AIRBAG_DEPLOY") in effective.write_ids

    def test_allow_rule_adds_situational_exception(self, evaluator, catalog):
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule(
                "P-1", RuleEffect.ALLOW, NODE_DOOR_LOCKS, Direction.WRITE, ("ECU_DISABLE",),
                condition=PolicyCondition(in_motion=False, alarm_armed=True),
            )
        )
        armed = CarSituation(in_motion=False, alarm_armed=True)
        driving = CarSituation(in_motion=True, alarm_armed=False)
        assert catalog.id_of("ECU_DISABLE") in evaluator.effective_for_node(
            NODE_DOOR_LOCKS, policy, armed
        ).write_ids
        assert catalog.id_of("ECU_DISABLE") not in evaluator.effective_for_node(
            NODE_DOOR_LOCKS, policy, driving
        ).write_ids

    def test_deny_wins_over_allow(self, evaluator, catalog):
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule("P-A", RuleEffect.ALLOW, NODE_EV_ECU, Direction.READ, ("ECU_DISABLE",))
        )
        policy.add_rule(
            AccessRule("P-D", RuleEffect.DENY, NODE_EV_ECU, Direction.READ, ("ECU_DISABLE",))
        )
        effective = evaluator.effective_for_node(NODE_EV_ECU, policy, CarSituation())
        assert catalog.id_of("ECU_DISABLE") not in effective.read_ids

    def test_wildcard_node_and_message(self, evaluator, catalog):
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule("P-1", RuleEffect.DENY, "*", Direction.BOTH, ("*",))
        )
        effective = evaluator.effective_for_all(policy, CarSituation())
        assert all(
            not node_policy.read_ids and not node_policy.write_ids
            for node_policy in effective.values()
        )

    def test_condition_not_matching_leaves_base(self, evaluator, catalog):
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule(
                "P-1", RuleEffect.DENY, NODE_DOOR_LOCKS, Direction.READ, ("DOOR_UNLOCK_CMD",),
                condition=PolicyCondition(in_motion=True),
            )
        )
        parked = evaluator.effective_for_node(
            NODE_DOOR_LOCKS, policy, CarSituation(in_motion=False)
        )
        assert catalog.id_of("DOOR_UNLOCK_CMD") in parked.read_ids


class TestSystemViews:
    def test_effective_for_all_covers_catalogue_nodes(self, evaluator, catalog):
        effective = evaluator.effective_for_all(empty_policy(), CarSituation())
        assert set(effective) == set(catalog.nodes())

    def test_decision_matrix_dimensions(self, evaluator, catalog):
        matrix = evaluator.decision_matrix(empty_policy(), CarSituation())
        assert len(matrix) == len(catalog.nodes()) * len(catalog) * 2
        assert matrix[(NODE_SENSORS, "SENSOR_ACCEL", "write")] is True
        assert matrix[(NODE_SENSORS, "ECU_DISABLE", "write")] is False

    def test_changed_nodes_between_situations(self, evaluator, catalog):
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule(
                "P-1", RuleEffect.DENY, NODE_DOOR_LOCKS, Direction.READ, ("DOOR_UNLOCK_CMD",),
                condition=PolicyCondition(in_motion=True),
            )
        )
        changed = evaluator.changed_nodes(
            policy, CarSituation(in_motion=False), CarSituation(in_motion=True)
        )
        assert NODE_DOOR_LOCKS in changed
        assert NODE_SENSORS not in changed
        assert evaluator.changed_nodes(policy, CarSituation(), CarSituation()) == []


class TestDecisionCache:
    """The (node, situation) LRU decision cache on the evaluator."""

    def test_repeat_evaluation_hits_the_cache(self, catalog):
        cached = PolicyEvaluator(catalog)
        policy = empty_policy()
        situation = CarSituation()
        first = cached.effective_for_node(NODE_SENSORS, policy, situation)
        second = cached.effective_for_node(NODE_SENSORS, policy, situation)
        assert first is second
        assert cached.cache_hits == 1
        assert cached.cache_misses == 1
        assert cached.cache_hit_rate == 0.5

    def test_cached_result_equals_uncached_result(self, catalog):
        cached = PolicyEvaluator(catalog)
        policy = empty_policy()
        situation = CarSituation(mode=CarMode.FAIL_SAFE, in_motion=True)
        cached.effective_for_node(NODE_EV_ECU, policy, situation)
        warm = cached.effective_for_node(NODE_EV_ECU, policy, situation)
        cold = PolicyEvaluator(catalog).effective_for_node(NODE_EV_ECU, policy, situation)
        assert warm == cold

    def test_situation_participates_in_the_key(self, catalog):
        cached = PolicyEvaluator(catalog)
        policy = SecurityPolicy("p")
        policy.add_rule(
            AccessRule(
                "P-1", RuleEffect.DENY, NODE_DOOR_LOCKS, Direction.READ,
                ("DOOR_UNLOCK_CMD",),
                condition=PolicyCondition(in_motion=True),
            )
        )
        moving = cached.effective_for_node(
            NODE_DOOR_LOCKS, policy, CarSituation(in_motion=True)
        )
        parked = cached.effective_for_node(
            NODE_DOOR_LOCKS, policy, CarSituation(in_motion=False)
        )
        assert cached.cache_misses == 2
        assert moving != parked

    def test_policies_have_independent_entries(self, catalog):
        cached = PolicyEvaluator(catalog)
        situation = CarSituation()
        base = empty_policy()
        successor = base.next_version()
        cached.effective_for_node(NODE_SENSORS, base, situation)
        cached.effective_for_node(NODE_SENSORS, successor, situation)
        assert cached.cache_misses == 2
        # Returning to the base policy -- the staggered-OTA fleet
        # pattern -- still hits; the switch did not flush its entries.
        cached.effective_for_node(NODE_SENSORS, base, situation)
        assert cached.cache_hits == 1
        assert cached.cache_size == 2

    def test_evicted_policies_drop_their_entries(self, catalog):
        cached = PolicyEvaluator(catalog, max_cached_policies=2)
        situation = CarSituation()
        policies = [empty_policy() for _ in range(3)]
        for policy in policies:
            cached.effective_for_node(NODE_SENSORS, policy, situation)
        # The first policy was evicted from the pin set with its entries.
        assert cached.cache_size == 2
        cached.effective_for_node(NODE_SENSORS, policies[0], situation)
        assert cached.cache_misses == 4

    def test_in_place_rule_edit_invalidates(self, catalog):
        cached = PolicyEvaluator(catalog)
        policy = SecurityPolicy("p")
        situation = CarSituation()
        before = cached.effective_for_node(NODE_SENSORS, policy, situation)
        policy.add_rule(
            AccessRule("P-1", RuleEffect.DENY, NODE_SENSORS, Direction.WRITE, ("*",))
        )
        after = cached.effective_for_node(NODE_SENSORS, policy, situation)
        assert before.write_ids
        assert not after.write_ids

    def test_explicit_invalidate_clears_entries_and_stats_keep_counting(self, catalog):
        cached = PolicyEvaluator(catalog)
        policy = empty_policy()
        cached.effective_for_node(NODE_SENSORS, policy, CarSituation())
        cached.invalidate()
        assert cached.cache_size == 0
        cached.effective_for_node(NODE_SENSORS, policy, CarSituation())
        assert cached.cache_misses == 2

    def test_capacity_is_bounded_lru(self, catalog):
        cached = PolicyEvaluator(catalog, cache_capacity=2)
        policy = empty_policy()
        for node in catalog.nodes()[:3]:
            cached.effective_for_node(node, policy, CarSituation())
        assert cached.cache_size == 2

    def test_capacity_must_be_positive(self, catalog):
        with pytest.raises(ValueError):
            PolicyEvaluator(catalog, cache_capacity=0)
        with pytest.raises(ValueError):
            PolicyEvaluator(catalog, max_cached_policies=0)
