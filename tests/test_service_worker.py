"""Tests for drain workers: dedup, failure accounting, crash recovery.

The crash-recovery case is the service's headline resilience claim: a
worker SIGKILLed mid-job loses its lease, a survivor requeues and
re-executes, and -- because outcomes are pure functions of the config --
the final fingerprint is bit-identical to a foreground run.
"""

import multiprocessing
import os
import signal

import pytest

from repro.api.config import ExperimentConfig
from repro.api.session import FleetSession
from repro.obs import clock
from repro.obs.export import MetricsSnapshot, merge_snapshots
from repro.service.store import ServiceStore
from repro.service.worker import DrainWorker

CONFIG = ExperimentConfig(scenario="mixed_ev_dos", vehicles=12, seed=5)
OTHER = ExperimentConfig(scenario="mixed_ev_dos", vehicles=12, seed=6)


@pytest.fixture()
def store(tmp_path):
    with ServiceStore(tmp_path / "svc.db") as store:
        yield store


def foreground_fingerprint(config: ExperimentConfig) -> str:
    with FleetSession(config) as session:
        return session.run().fingerprint()


class TestDrain:
    def test_dedup_serves_identical_configs_from_cache(self, store):
        store.submit(CONFIG)
        store.submit(CONFIG)
        store.submit(OTHER)
        with DrainWorker(store, name="w0") as worker:
            assert worker.drain() == 3
        snapshot = worker.registry.snapshot()
        # Exactly one simulation per distinct config: 2 runs, 1 cache hit.
        assert snapshot.counter("service.runs") == 2
        assert snapshot.counter("service.cache_hits") == 1
        assert snapshot.counter("service.jobs_completed") == 3
        assert store.counts()["done"] == 3
        assert store.cache_stats() == {"entries": 2, "hits": 1}

    def test_cached_result_is_bit_identical_to_foreground(self, store):
        store.submit(CONFIG)
        with DrainWorker(store, name="w0") as worker:
            worker.drain()
        cached = store.result_for(CONFIG.config_hash())
        assert cached.fingerprint() == foreground_fingerprint(CONFIG)

    def test_run_once_reports_how_the_job_was_served(self, store):
        store.submit(CONFIG)
        store.submit(CONFIG)
        with DrainWorker(store, name="w0") as worker:
            assert worker.run_once() == "executed"
            assert worker.run_once() == "cache_hit"
            assert worker.run_once() is None

    def test_failure_requeues_then_exhausts(self, store):
        bad = dict(CONFIG.to_dict(), scenario="no_such_scenario")
        job, _ = store.submit(bad, max_attempts=2)
        with DrainWorker(store, name="w0") as worker:
            assert worker.run_once() == "failed"
            assert store.job(job.id).state == "queued"
            # Deterministic backoff delays the requeue briefly.
            deadline = clock.wall() + 10.0
            while worker.run_once() is None:
                assert clock.wall() < deadline, "requeue never became leasable"
                clock.sleep(0.02)
        final = store.job(job.id)
        assert final.state == "failed"
        assert final.attempts == 2
        assert "no_such_scenario" in final.error
        assert worker.registry.snapshot().counter("service.jobs_failed") == 2

    def test_worker_publishes_metrics_to_the_store(self, store):
        store.submit(CONFIG)
        with DrainWorker(store, name="w0") as worker:
            worker.drain()
        rows = store.worker_metrics()
        assert [name for name, _ in rows] == ["w0"]
        merged = merge_snapshots(
            MetricsSnapshot.from_json(snapshot) for _, snapshot in rows
        )
        assert merged.counter("service.runs") == 1
        assert merged.histogram("service.job_latency_seconds").count == 1
        # The warm session's own telemetry rides in the same registry.
        assert merged.counter("session.runs") == 1

    def test_unknown_hooks_rejected(self, store):
        with pytest.raises(ValueError, match="unknown worker hooks"):
            DrainWorker(store, hooks={"after_job": lambda w, j: None})

    def test_warm_session_is_reused_across_jobs(self, store):
        store.submit(CONFIG)
        store.submit(OTHER)
        with DrainWorker(store, name="w0") as worker:
            worker.drain()
            session = worker._session
        assert session is not None
        snapshot = worker.registry.snapshot()
        assert snapshot.counter("session.runs") == 2


def _doomed_worker_main(db_path: str) -> None:
    """Lease a job, then stall inside the lease until SIGKILLed."""
    store = ServiceStore(db_path)
    worker = DrainWorker(
        store,
        name="doomed",
        lease_s=1.0,
        hooks={"after_lease": lambda w, j: clock.sleep(120.0)},
    )
    worker.run_once()


class TestCrashRecovery:
    def test_sigkilled_worker_job_completes_on_survivor(self, store):
        job, _ = store.submit(CONFIG)
        process = multiprocessing.Process(
            target=_doomed_worker_main, args=(store.path,)
        )
        process.start()
        try:
            # Wait for the doomed worker to take the lease.
            deadline = clock.wall() + 30.0
            while store.job(job.id).state != "leased":
                assert clock.wall() < deadline, "job was never leased"
                clock.sleep(0.02)
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=10.0)
            assert process.exitcode == -signal.SIGKILL
            # The job is still leased by a dead process; nothing happens
            # until the lease (1s) lapses and a survivor sweeps it.
            assert store.job(job.id).state == "leased"
            with DrainWorker(store, name="survivor", lease_s=1.0) as survivor:
                deadline = clock.wall() + 30.0
                while store.job(job.id).state != "done":
                    assert clock.wall() < deadline, "survivor never finished the job"
                    if survivor.run_once() is None:
                        clock.sleep(0.05)
            final = store.job(job.id)
            assert final.worker == "survivor"
            assert final.attempts == 2  # doomed lease + surviving execution
            assert (
                survivor.registry.snapshot().counter("service.lease_expiries") == 1
            )
            # Determinism: the re-run equals a foreground run bit for bit.
            cached = store.result_for(CONFIG.config_hash())
            assert cached.fingerprint() == foreground_fingerprint(CONFIG)
        finally:
            if process.is_alive():
                process.kill()
                process.join(timeout=5.0)
