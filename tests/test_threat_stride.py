"""Tests for STRIDE categorisation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.threat.stride import (
    StrideCategory,
    StrideClassification,
    classify_attack_effects,
)


class TestStrideCategory:
    def test_six_categories(self):
        assert len(StrideCategory) == 6

    def test_letters_are_unique(self):
        letters = {c.letter for c in StrideCategory}
        assert letters == {"S", "T", "R", "I", "D", "E"}

    @pytest.mark.parametrize(
        "letter, expected",
        [
            ("S", StrideCategory.SPOOFING),
            ("t", StrideCategory.TAMPERING),
            ("R", StrideCategory.REPUDIATION),
            ("i", StrideCategory.INFORMATION_DISCLOSURE),
            ("D", StrideCategory.DENIAL_OF_SERVICE),
            ("e", StrideCategory.ELEVATION_OF_PRIVILEGE),
        ],
    )
    def test_from_letter(self, letter, expected):
        assert StrideCategory.from_letter(letter) is expected

    def test_from_letter_rejects_unknown(self):
        with pytest.raises(ValueError):
            StrideCategory.from_letter("X")

    def test_violated_properties(self):
        assert StrideCategory.SPOOFING.violated_property == "authentication"
        assert StrideCategory.TAMPERING.violated_property == "integrity"
        assert StrideCategory.DENIAL_OF_SERVICE.violated_property == "availability"

    def test_descriptions_are_non_empty(self):
        for category in StrideCategory:
            assert category.description


class TestStrideClassification:
    def test_parse_paper_notation(self):
        classification = StrideClassification.parse("STD")
        assert StrideCategory.SPOOFING in classification
        assert StrideCategory.TAMPERING in classification
        assert StrideCategory.DENIAL_OF_SERVICE in classification
        assert StrideCategory.REPUDIATION not in classification

    def test_parse_is_case_insensitive(self):
        assert StrideClassification.parse("stide") == StrideClassification.parse("STIDE")

    def test_letters_render_in_canonical_order(self):
        assert StrideClassification.parse("DTS").letters == "STD"
        assert StrideClassification.parse("EIT").letters == "TIE"

    def test_parse_rejects_empty(self):
        with pytest.raises(ValueError):
            StrideClassification.parse("")

    def test_parse_rejects_unknown_letters(self):
        with pytest.raises(ValueError):
            StrideClassification.parse("SXZ")

    def test_of_constructor(self):
        classification = StrideClassification.of(
            StrideCategory.SPOOFING, StrideCategory.ELEVATION_OF_PRIVILEGE
        )
        assert classification.letters == "SE"

    def test_empty_classification_rejected(self):
        with pytest.raises(ValueError):
            StrideClassification(frozenset())

    def test_union(self):
        merged = StrideClassification.parse("ST").union(StrideClassification.parse("DE"))
        assert merged.letters == "STDE"

    def test_intersection(self):
        common = StrideClassification.parse("STD").intersection(
            StrideClassification.parse("TDE")
        )
        assert common == {StrideCategory.TAMPERING, StrideCategory.DENIAL_OF_SERVICE}

    def test_violated_properties_follow_order(self):
        assert StrideClassification.parse("SD").violated_properties == (
            "authentication",
            "availability",
        )

    def test_len_and_iter(self):
        classification = StrideClassification.parse("TIE")
        assert len(classification) == 3
        assert [c.letter for c in classification] == ["T", "I", "E"]

    def test_hashable(self):
        assert {StrideClassification.parse("ST"), StrideClassification.parse("TS")} == {
            StrideClassification.parse("ST")
        }

    @given(
        st.sets(
            st.sampled_from(list(StrideCategory)), min_size=1, max_size=6
        )
    )
    def test_parse_render_roundtrip(self, categories):
        classification = StrideClassification(frozenset(categories))
        assert StrideClassification.parse(classification.letters) == classification

    @given(st.sets(st.sampled_from(list(StrideCategory)), min_size=1))
    def test_letters_length_matches_category_count(self, categories):
        classification = StrideClassification(frozenset(categories))
        assert len(classification.letters) == len(categories)


class TestClassifyAttackEffects:
    def test_spoofing_and_dos(self):
        classification = classify_attack_effects(
            ["spoofed CAN data", "ECU becomes unresponsive"]
        )
        assert StrideCategory.SPOOFING in classification
        assert StrideCategory.DENIAL_OF_SERVICE in classification

    def test_privacy_effect_maps_to_information_disclosure(self):
        classification = classify_attack_effects(["privacy attack leaking GPS"])
        assert StrideCategory.INFORMATION_DISCLOSURE in classification

    def test_unrecognised_effects_raise(self):
        with pytest.raises(ValueError):
            classify_attack_effects(["nothing interesting"])
