"""Tests for DREAD risk rating."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.threat.dread import (
    DreadScore,
    RiskLevel,
    aggregate_scores,
    mean_average,
)

score_components = st.integers(min_value=0, max_value=10)
dread_scores = st.builds(
    DreadScore,
    damage=score_components,
    reproducibility=score_components,
    exploitability=score_components,
    affected_users=score_components,
    discoverability=score_components,
)


class TestDreadScore:
    def test_paper_row_average(self):
        # Table I first row: 8,5,4,6,4 -> 5.4
        score = DreadScore(8, 5, 4, 6, 4)
        assert score.average == pytest.approx(5.4)
        assert score.total == 27

    def test_parse_plain(self):
        assert DreadScore.parse("8,5,4,6,4") == DreadScore(8, 5, 4, 6, 4)

    def test_parse_with_average(self):
        assert DreadScore.parse("6,6,7,8,6 (6.6)") == DreadScore(6, 6, 7, 8, 6)

    def test_parse_rejects_wrong_average(self):
        with pytest.raises(ValueError):
            DreadScore.parse("6,6,7,8,6 (9.9)")

    def test_parse_rejects_wrong_arity(self):
        with pytest.raises(ValueError):
            DreadScore.parse("1,2,3")

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            DreadScore(11, 0, 0, 0, 0)
        with pytest.raises(ValueError):
            DreadScore(-1, 0, 0, 0, 0)

    def test_non_integer_rejected(self):
        with pytest.raises(TypeError):
            DreadScore(1.5, 0, 0, 0, 0)

    def test_render_matches_paper_notation(self):
        assert DreadScore(8, 6, 7, 8, 5).render() == "8,6,7,8,5 (6.8)"

    def test_ordering_by_average(self):
        low = DreadScore(1, 1, 1, 1, 1)
        high = DreadScore(9, 9, 9, 9, 9)
        assert low < high
        assert high > low
        assert low <= low
        assert high >= high

    def test_components_mapping(self):
        score = DreadScore(1, 2, 3, 4, 5)
        assert score.components() == {
            "damage": 1,
            "reproducibility": 2,
            "exploitability": 3,
            "affected_users": 4,
            "discoverability": 5,
        }

    def test_iteration_order(self):
        assert list(DreadScore(1, 2, 3, 4, 5)) == [1, 2, 3, 4, 5]

    def test_likelihood_and_impact_proxies(self):
        score = DreadScore(8, 5, 4, 6, 4)
        assert score.likelihood == pytest.approx((5 + 4 + 4) / 3)
        assert score.impact == pytest.approx((8 + 6) / 2)

    @given(dread_scores)
    def test_average_bounded(self, score):
        assert 0.0 <= score.average <= 10.0

    @given(dread_scores)
    def test_average_equals_total_over_five(self, score):
        assert score.average == pytest.approx(score.total / 5.0)

    @given(dread_scores)
    def test_render_parse_roundtrip(self, score):
        assert DreadScore.parse(score.render()) == score

    @given(dread_scores)
    def test_level_consistent_with_average(self, score):
        assert score.level is RiskLevel.from_average(score.average)


class TestRiskLevel:
    @pytest.mark.parametrize(
        "average, expected",
        [
            (0.0, RiskLevel.LOW),
            (2.9, RiskLevel.LOW),
            (3.0, RiskLevel.MEDIUM),
            (5.9, RiskLevel.MEDIUM),
            (6.0, RiskLevel.HIGH),
            (7.9, RiskLevel.HIGH),
            (8.0, RiskLevel.CRITICAL),
            (10.0, RiskLevel.CRITICAL),
        ],
    )
    def test_banding(self, average, expected):
        assert RiskLevel.from_average(average) is expected

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            RiskLevel.from_average(10.5)
        with pytest.raises(ValueError):
            RiskLevel.from_average(-0.1)


class TestAggregation:
    def test_aggregate_takes_componentwise_maximum(self):
        combined = aggregate_scores(
            [DreadScore(8, 1, 1, 1, 1), DreadScore(1, 9, 1, 1, 1)]
        )
        assert combined == DreadScore(8, 9, 1, 1, 1)

    def test_aggregate_empty_returns_none(self):
        assert aggregate_scores([]) is None

    def test_mean_average(self):
        assert mean_average([DreadScore(5, 5, 5, 5, 5), DreadScore(7, 7, 7, 7, 7)]) == 6.0

    def test_mean_average_empty(self):
        assert mean_average([]) == 0.0

    @given(st.lists(dread_scores, min_size=1, max_size=8))
    def test_aggregate_dominates_every_input(self, scores):
        combined = aggregate_scores(scores)
        for score in scores:
            for name, value in score.components().items():
                assert combined.components()[name] >= value
