"""Tests for the HTTP service surface and its client.

An in-process :class:`ExperimentService` (port 0, real drain-worker
processes) backs most cases; the shutdown test drives the real CLI in a
subprocess and asserts SIGTERM exits 0.
"""

import json
import os
import signal
import subprocess
import sys
import urllib.request
from pathlib import Path

import pytest

from repro.api.config import ExperimentConfig
from repro.api.session import FleetSession
from repro.obs import clock
from repro.service import ExperimentService, ServiceClient, ServiceError

REPO_ROOT = Path(__file__).resolve().parents[1]

CONFIG = ExperimentConfig(scenario="mixed_ev_dos", vehicles=12, seed=5)
OTHER = ExperimentConfig(scenario="mixed_ev_dos", vehicles=12, seed=6)


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    db = tmp_path_factory.mktemp("service") / "svc.db"
    with ExperimentService(
        db, port=0, drain_workers=2, lease_s=30.0, poll_s=0.05
    ) as service:
        yield service


@pytest.fixture()
def client(service):
    return ServiceClient(service.url)


class TestSubmitAndFetch:
    def test_dedup_two_identical_one_distinct(self, service, client):
        # The headline invariant: 2 identical + 1 distinct submission
        # cost exactly 2 simulations, the duplicate is a cache hit, and
        # every fingerprint matches a foreground run of its config.
        a = client.submit(CONFIG)
        b = client.submit(dict(reversed(list(CONFIG.to_dict().items()))))
        c = client.submit(OTHER)
        assert not a["cached"]
        assert a["config_hash"] == b["config_hash"] != c["config_hash"]
        result_a = client.result(a["id"])
        result_b = client.result(b["id"])
        result_c = client.result(c["id"])
        assert result_a.fingerprint() == result_b.fingerprint()
        assert result_a.to_dict() == result_b.to_dict()
        with FleetSession(CONFIG) as session:
            assert result_a.fingerprint() == session.run().fingerprint()
        with FleetSession(OTHER) as session:
            assert result_c.fingerprint() == session.run().fingerprint()
        snapshot = client.metrics()
        assert snapshot.counter("service.runs") == 2
        assert snapshot.counter("service.cache_hits") == 1
        assert snapshot.gauge("service.result_cache.entries") == 2.0

    def test_submission_after_done_reports_cached(self, client):
        client.result(client.submit(CONFIG)["id"])
        assert client.submit(CONFIG)["cached"]

    def test_job_payload_carries_result_once_done(self, client):
        payload = client.wait(client.submit(CONFIG)["id"])
        assert payload["state"] == "done"
        assert payload["result"]["fingerprint"]
        assert payload["attempts"] >= 1

    def test_jobs_listing_filters_by_state(self, client):
        client.result(client.submit(CONFIG)["id"])
        done = client.jobs(state="done")
        assert done and all(job["state"] == "done" for job in done)

    def test_invalid_config_is_a_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.submit({"scenario": "x", "vehicles": 3, "vehicels": 9})
        assert excinfo.value.status == 400
        assert "vehicels" in str(excinfo.value)

    def test_unknown_job_is_a_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client.job(99999)
        assert excinfo.value.status == 404

    def test_unknown_endpoint_is_a_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/nope")
        assert excinfo.value.status == 404

    def test_cancel_done_job_is_a_409(self, client):
        job_id = client.submit(CONFIG)["id"]
        client.wait(job_id)
        with pytest.raises(ServiceError) as excinfo:
            client.cancel(job_id)
        assert excinfo.value.status == 409


class TestOutcomeStreaming:
    def test_stream_matches_foreground_outcomes_exactly(self, client):
        job_id = client.submit(CONFIG)["id"]
        client.wait(job_id)
        streamed = list(client.iter_outcomes(job_id))
        with FleetSession(CONFIG) as session:
            direct = list(session.iter_outcomes())
        # Deterministic fields match bit for bit; wall/build seconds are
        # host telemetry and legitimately differ between the two runs.
        assert [o.deterministic_tuple() for o in streamed] == [
            o.deterministic_tuple() for o in direct
        ]
        assert [o.vehicle_id for o in streamed] == sorted(
            o.vehicle_id for o in direct
        )

    def test_stream_uses_chunked_transfer(self, service, client):
        job_id = client.submit(CONFIG)["id"]
        client.wait(job_id)
        response = urllib.request.urlopen(
            f"{service.url}/experiments/{job_id}/outcomes", timeout=30
        )
        assert response.headers.get("Transfer-Encoding") == "chunked"
        assert response.headers.get("Content-Type") == "application/x-ndjson"
        lines = [line for line in response.read().splitlines() if line]
        assert len(lines) == CONFIG.vehicles
        json.loads(lines[0])  # each line is one JSON object

    def test_stream_for_unknown_job_is_a_404(self, client):
        with pytest.raises(ServiceError) as excinfo:
            list(client.iter_outcomes(99999))
        assert excinfo.value.status == 404


class TestServiceState:
    def test_health_reports_counts(self, client):
        health = client.health()
        assert health["ok"] is True
        assert set(health["counts"]) == {
            "queued", "leased", "done", "failed", "cancelled",
        }

    def test_prometheus_exposition(self, client):
        client.result(client.submit(CONFIG)["id"])
        text = client.metrics_text()
        assert "# TYPE repro_service_runs counter" in text
        assert "repro_service_queue_depth_done" in text
        assert "repro_service_job_latency_seconds_bucket" in text

    def test_metrics_json_round_trips(self, client):
        snapshot = client.metrics()
        assert snapshot.counter("service.http_requests") > 0

    def test_unknown_metrics_format_is_a_400(self, client):
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/metrics?format=yaml")
        assert excinfo.value.status == 400

    def test_cancel_queued_job(self, tmp_path):
        # A workerless service: submissions stay queued, so cancel is
        # deterministic (no race against a drain worker taking the job).
        with ExperimentService(
            tmp_path / "idle.db", port=0, drain_workers=0
        ) as idle:
            client = ServiceClient(idle.url)
            job_id = client.submit(CONFIG)["id"]
            cancelled = client.cancel(job_id)
            assert cancelled["state"] == "cancelled"
            assert client.job(job_id)["state"] == "cancelled"


class TestCliShutdown:
    def test_sigterm_stops_the_service_with_exit_0(self, tmp_path):
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        process = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "service", "start",
                "--db", str(tmp_path / "svc.db"),
                "--host", "127.0.0.1", "--port", "0",
                "--drain-workers", "1", "--poll", "0.05",
            ],
            env=env,
            cwd=tmp_path,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            # The CLI prints the bound URL on startup; wait for it, then
            # poll /healthz so SIGTERM lands on a fully started service.
            url = None
            deadline = clock.wall() + 60.0
            while url is None:
                assert clock.wall() < deadline, "service never printed its URL"
                line = process.stdout.readline()
                if line.startswith("service"):
                    url = line.split(":", 1)[1].strip()
            deadline = clock.wall() + 60.0
            while True:
                try:
                    urllib.request.urlopen(f"{url}/healthz", timeout=1)
                    break
                except OSError:
                    assert clock.wall() < deadline, "service never became healthy"
                    clock.sleep(0.1)
            process.send_signal(signal.SIGTERM)
            output = process.communicate(timeout=60)[0]
        finally:
            if process.poll() is None:
                process.kill()
                process.communicate()
        assert process.returncode == 0, output
        assert "service stopped" in output
