"""Tests for the assembled connected car."""

import pytest

from repro.vehicle.car import ConnectedCar
from repro.vehicle.messages import ALL_NODES
from repro.vehicle.modes import CarMode


class TestAssembly:
    def test_all_nodes_attached(self):
        car = ConnectedCar()
        assert set(car.node_names()) == set(ALL_NODES)
        assert len(car.bus.nodes) == len(ALL_NODES)

    def test_ecu_lookup(self):
        car = ConnectedCar()
        assert car.ecu("EV-ECU") is car.ev_ecu
        assert car.ecu("Safety") is car.safety
        with pytest.raises(KeyError):
            car.ecu("Ghost")

    def test_initial_health_is_green(self):
        health = ConnectedCar().health()
        assert all(health.values())

    def test_initial_mode(self):
        assert ConnectedCar().mode is CarMode.NORMAL


class TestBehaviour:
    def test_periodic_traffic_flows(self):
        car = ConnectedCar(start_periodic_traffic=True)
        car.run(0.5)
        assert car.bus.statistics.frames_transmitted > 50
        assert car.bus.statistics.frames_delivered > car.bus.statistics.frames_transmitted

    def test_drive_updates_state(self):
        car = ConnectedCar(start_periodic_traffic=True)
        car.drive(accel=100, duration=0.5)
        assert car.door_locks.vehicle_in_motion
        assert car.ev_ecu.sensor_state["accel"] >= 100
        assert car.engine.rpm > 800
        assert car.infotainment.displayed_status["speed"] > 0

    def test_park_and_arm_immobilises(self):
        car = ConnectedCar()
        car.park_and_arm()
        assert car.safety.alarm_armed
        assert car.door_locks.locked
        assert not car.ev_ecu.propulsion_available

    def test_mode_listener_called(self):
        car = ConnectedCar()
        events = []
        car.add_mode_listener(lambda previous, new: events.append(new))
        car.modes.enter_fail_safe()
        assert events == [CarMode.FAIL_SAFE]

    def test_sync_enforcement_without_coordinator_is_noop(self):
        car = ConnectedCar()
        car.sync_enforcement()  # must not raise

    def test_crash_scenario_end_to_end(self):
        car = ConnectedCar(start_periodic_traffic=True)
        car.drive(accel=80, duration=0.2)
        car.sensors.set_pedals(accel=0, brake=255)
        car.sensors.set_proximity(5)
        car.run(0.2)
        assert car.safety.failsafe_active
        assert car.telematics.emergency_calls_placed >= 1
        assert not car.door_locks.locked


class TestTopology:
    def test_topology_matches_fig2(self):
        car = ConnectedCar()
        graph = car.topology()
        # Bus node plus 9 ECUs plus 4 external interfaces.
        assert graph.number_of_nodes() == 1 + len(ALL_NODES) + 4
        bus_degree = graph.degree(car.bus.name)
        assert bus_degree == len(ALL_NODES)
        assert graph.has_edge("Cellular-3G/4G", "Telematics")
        assert graph.has_edge("OBD-Port", "Gateway")
        assert graph.has_edge("Media-Browser", "Infotainment")

    def test_external_interfaces_not_on_bus_directly(self):
        graph = ConnectedCar().topology()
        for external in ("Cellular-3G/4G", "WiFi", "OBD-Port", "Media-Browser"):
            assert not graph.has_edge(external, "vehicle-can")
