"""Shared pytest fixtures.

Also makes the ``src/`` layout importable without an installed package,
so the suite runs in environments where an editable install is not
possible (e.g. offline CI images).
"""

from __future__ import annotations

import sys
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src"
if str(SRC) not in sys.path:
    sys.path.insert(0, str(SRC))

import pytest

from repro.casestudy.builder import CaseStudyBuilder
from repro.core.enforcement import EnforcementConfig
from repro.vehicle.car import ConnectedCar
from repro.vehicle.messages import standard_catalog


@pytest.fixture(scope="session")
def catalog():
    """The standard connected-car message catalogue."""
    return standard_catalog()


@pytest.fixture(scope="session")
def builder():
    """A case-study builder with the policy derived once per session."""
    return CaseStudyBuilder()


@pytest.fixture()
def unprotected_car(builder) -> ConnectedCar:
    """A fresh car with no runtime enforcement."""
    return builder.build_car(config=None)


@pytest.fixture()
def protected_car(builder) -> ConnectedCar:
    """A fresh car with full (HPE + SELinux) enforcement fitted."""
    return builder.build_car(config=EnforcementConfig.full())


@pytest.fixture()
def hpe_only_car(builder) -> ConnectedCar:
    """A fresh car with hardware policy engines only."""
    return builder.build_car(config=EnforcementConfig.hardware_only())
