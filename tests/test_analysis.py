"""Tests for the analysis layer: Table I, Figures 1-4, metrics, comparisons."""

import pytest

from repro.analysis.comparison import (
    EnforcementComparison,
    compare_enforcement_configurations,
    render_response_comparison,
    response_comparison_rows,
)
from repro.analysis.coverage import run_derivation_sweep
from repro.analysis.figures import (
    FIG1_GROUPS,
    fig1_stage_flow,
    fig2_topology_graph,
    fig3_node_structure,
    fig4_hpe_structure,
    render_fig1_lifecycle,
    render_fig2_topology,
    render_fig3_can_node,
    render_fig4_hpe_node,
)
from repro.analysis.metrics import CampaignMetrics, measure_overhead
from repro.analysis.tables import reproduce_table1
from repro.attacks.campaign import AttackCampaign
from repro.core.enforcement import EnforcementConfig
from repro.core.lifecycle import STAGE_ORDER


class TestTable1Reproduction:
    def test_all_rows_reproduced_with_matching_averages(self):
        table = reproduce_table1()
        assert table.row_count == 16
        assert table.matching_averages == 16
        assert table.agreement == 1.0

    def test_assets_in_paper_order(self):
        assets = reproduce_table1().assets()
        assert assets[0] == "EV-ECU"
        assert assets[-1] == "Safety Critical"

    def test_render_contains_key_cells(self):
        text = reproduce_table1().render()
        assert "Spoofed data over CAN bus causing disablement of ECU" in text
        assert "8,5,4,6,4 (5.4)" in text
        assert "STIDE" in text
        assert "| R " in text and "| RW" in text and "| W " in text


class TestFigures:
    def test_fig1_flow_covers_every_stage(self):
        flow = fig1_stage_flow()
        assert len(flow) == len(STAGE_ORDER)
        assert sum(len(stages) for stages in FIG1_GROUPS.values()) == len(STAGE_ORDER)
        assert "security-model" in [stage for stage, _ in flow]
        rendered = render_fig1_lifecycle()
        assert "threat-modelling" in rendered
        assert "security model" in rendered.lower()

    def test_fig2_topology(self, unprotected_car):
        graph = fig2_topology_graph(unprotected_car)
        assert graph.number_of_nodes() == 14
        rendered = render_fig2_topology(unprotected_car)
        assert "EV-ECU" in rendered
        assert "CAN bus" in rendered
        assert "Cellular-3G/4G" in rendered

    def test_fig3_structure(self):
        structure = fig3_node_structure()
        assert structure["transceiver"] == "CANTransceiver"
        assert structure["controller"] == "CANController"
        assert "Transceiver" in render_fig3_can_node()

    def test_fig4_structure(self):
        structure = fig4_hpe_structure()
        assert structure["approved_read_ids"] == [0x020, 0x050]
        rendered = render_fig4_hpe_node()
        assert "approved reading list" in rendered
        assert "0x020" in rendered

    def test_fig4_reflects_live_engine(self, protected_car):
        engine = protected_car.enforcement_coordinator.engines["EV-ECU"]
        rendered = render_fig4_hpe_node(engine)
        assert "EV-ECU" in rendered


class TestMetrics:
    def test_campaign_metrics(self, builder):
        result = AttackCampaign(
            builder.factory(EnforcementConfig.full()), configuration_name="full"
        ).run()
        metrics = CampaignMetrics(result)
        summary = metrics.summary()
        assert summary["scenarios"] == 16
        assert summary["attack_success_rate"] <= 0.1
        per_asset = metrics.per_asset()
        assert sum(a.scenarios for a in per_asset) == 16
        assert len(metrics.rows()) == 16
        assert set(metrics.per_mode()) <= {"normal", "fail-safe", "remote-diagnostic"}

    def test_overhead_measurement(self, builder):
        protected = builder.build_car(EnforcementConfig.full(), start_periodic_traffic=True)
        unprotected = builder.build_car(None, start_periodic_traffic=True)
        protected.run(0.3)
        unprotected.run(0.3)
        with_enforcement = measure_overhead(protected, 0.3)
        without = measure_overhead(unprotected, 0.3)
        assert with_enforcement.hpe_decisions > 0
        assert with_enforcement.decisions_per_frame >= 1.0
        assert with_enforcement.mean_decision_latency_s > 0
        assert with_enforcement.latency_overhead_ratio < 0.01
        assert without.hpe_decisions == 0
        assert without.selinux_checks == 0
        assert with_enforcement.summary()["bus_utilisation"] > 0


class TestComparisons:
    def test_enforcement_comparison_shape(self, builder):
        comparison = compare_enforcement_configurations(
            configurations=(
                ("unprotected", None),
                ("hpe+selinux", EnforcementConfig.full()),
            ),
            builder=builder,
        )
        assert isinstance(comparison, EnforcementComparison)
        rates = comparison.success_rates()
        assert rates["unprotected"] == 1.0
        assert rates["hpe+selinux"] < 0.1
        matrix = comparison.scenario_matrix()
        assert len(matrix) == 16
        rendered = comparison.render()
        assert "success rate" in rendered
        assert "T01" in rendered

    def test_response_comparison_rows(self):
        rows = response_comparison_rows(fleet_size=50_000)
        assert rows[0][0] == "policy"
        policy_days = rows[0][2]
        assert all(days > policy_days for _, _, days, _, _ in rows[1:])
        assert all(slowdown > 1 for _, _, _, _, slowdown in rows[1:])
        rendered = render_response_comparison()
        assert "policy-update" in rendered
        assert "product-recall" in rendered

    def test_derivation_sweep_monotonic(self):
        sweep = run_derivation_sweep(thresholds=(0.0, 5.0, 6.0, 7.0))
        assert len(sweep.points) == 4
        assert sweep.is_monotonic()
        assert sweep.points[0].coverage == 1.0
        assert sweep.points[-1].coverage < sweep.points[0].coverage
        assert sweep.points[0].residual_risk == pytest.approx(0.0)
        assert "Residual risk" in sweep.render()
