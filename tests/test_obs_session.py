"""Session-level telemetry: phases, worker merge, CLI flags.

The acceptance surface of the telemetry subsystem: a metrics-enabled
run produces phase histograms for every pipeline stage, pool and
policy-cache counters, shm byte counts merged across >= 2 workers --
and the CLI exposes it all behind ``--metrics`` without touching the
config or the fingerprint.
"""

import json

import pytest

from repro.api.cli import main as cli_main
from repro.api.config import ExperimentConfig
from repro.api.session import FleetSession
from repro.obs import metrics as obs_metrics
from repro.obs.export import MetricsSnapshot
from repro.obs.metrics import MetricsRegistry


@pytest.fixture(autouse=True)
def _noop_registry_after():
    yield
    obs_metrics.activate(obs_metrics.NOOP_REGISTRY)


def _run(config: ExperimentConfig, telemetry=True):
    with FleetSession(config, telemetry=telemetry) as session:
        result = session.run()
        return result, session.metrics_snapshot()


class TestSessionTelemetryApi:
    def test_disabled_by_default(self):
        config = ExperimentConfig(scenario="fleet_replay_storm", vehicles=3)
        with FleetSession(config) as session:
            assert session.metrics.enabled is False
            session.run()
            assert session.metrics_snapshot().empty

    def test_telemetry_true_gets_fresh_registry(self):
        config = ExperimentConfig(scenario="fleet_replay_storm", vehicles=3)
        with FleetSession(config, telemetry=True) as session:
            assert isinstance(session.metrics, MetricsRegistry)
            assert session.metrics.enabled

    def test_injected_registry_is_shared(self):
        registry = MetricsRegistry()
        config = ExperimentConfig(scenario="fleet_replay_storm", vehicles=3)
        with FleetSession(config, telemetry=registry) as session:
            assert session.metrics is registry
            session.run()
        assert registry.counter("vehicles.simulated").value == 3

    def test_invalid_telemetry_rejected(self):
        config = ExperimentConfig(scenario="fleet_replay_storm", vehicles=3)
        with pytest.raises(TypeError):
            FleetSession(config, telemetry="yes")

    def test_active_registry_restored_after_run(self):
        config = ExperimentConfig(scenario="fleet_replay_storm", vehicles=3)
        before = obs_metrics.ACTIVE
        _run(config)
        assert obs_metrics.ACTIVE is before

    def test_active_registry_restored_on_abandoned_stream(self):
        config = ExperimentConfig(scenario="fleet_replay_storm", vehicles=6)
        before = obs_metrics.ACTIVE
        with FleetSession(config, telemetry=True) as session:
            stream = session.iter_outcomes()
            next(stream)
            stream.close()
        assert obs_metrics.ACTIVE is before


class TestInlinePhases:
    @pytest.fixture(scope="class")
    def snapshot(self):
        config = ExperimentConfig(
            scenario="fleet_replay_storm", vehicles=8, workers=1, seed=5
        )
        _, snapshot = _run(config)
        return snapshot

    def test_vehicle_counter(self, snapshot):
        assert snapshot.counter("vehicles.simulated") == 8
        assert snapshot.counter("session.runs") == 1

    def test_phase_histograms(self, snapshot):
        assert snapshot.histogram("phase.run.spec_gen.wall_seconds").count == 8
        assert snapshot.histogram("phase.run.aggregate.wall_seconds").count == 8
        assert snapshot.histogram("phase.simulate.vehicle.wall_seconds").count == 8
        assert snapshot.histogram("phase.simulate.build.wall_seconds").count == 8
        assert snapshot.histogram("phase.run.total.wall_seconds").count == 1

    def test_pool_counters(self, snapshot):
        # The process-wide pool may already be warm from earlier tests
        # (builds then being 0), but every vehicle is either a build or
        # a reuse and the pool holds at least one car afterwards.
        assert snapshot.counter("pool.builds") + snapshot.counter("pool.reuses") == 8
        assert snapshot.gauge("pool.size") >= 1.0
        reset_hist = snapshot.histogram("pool.reset_seconds")
        build_hist = snapshot.histogram("pool.build_seconds")
        timed = (reset_hist.count if reset_hist else 0) + (
            build_hist.count if build_hist else 0
        )
        assert timed == 8

    def test_policy_cache_counters(self, snapshot):
        assert snapshot.counter("policy.cache_hits") > 0
        assert snapshot.counter("policy.cache_misses") >= 0

    def test_bus_counters(self, snapshot):
        assert snapshot.counter("bus.events_total") > 0
        assert snapshot.counter("bus.events.delivered") > 0


class TestWorkerMerge:
    @pytest.fixture(scope="class")
    def merged(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos", vehicles=24, workers=2, seed=5,
            spec_transfer="shm",
        )
        result, snapshot = _run(config)
        return result, snapshot

    def test_vehicle_counter_spans_workers(self, merged):
        _, snapshot = merged
        assert snapshot.counter("vehicles.simulated") == 24

    def test_shm_byte_counts_present(self, merged):
        _, snapshot = merged
        # Parent writes spec segments, workers write outcome segments;
        # both directions land in the merged snapshot.
        assert snapshot.counter("shm.segments_written") >= 2
        assert snapshot.counter("shm.segments_read") == snapshot.counter(
            "shm.segments_written"
        )
        assert snapshot.counter("shm.bytes_written") > 0
        assert snapshot.counter("shm.bytes_read") == snapshot.counter(
            "shm.bytes_written"
        )

    def test_worker_side_phases_merged(self, merged):
        _, snapshot = merged
        assert snapshot.histogram("phase.simulate.wall_seconds").count >= 2
        assert snapshot.histogram("phase.simulate.vehicle.wall_seconds").count == 24

    def test_parent_side_phases_present(self, merged):
        _, snapshot = merged
        for phase in ("run.encode", "run.decode", "run.wait"):
            hist = snapshot.histogram(f"phase.{phase}.wall_seconds")
            assert hist is not None and hist.count >= 2, phase

    def test_policy_counters_merged_across_workers(self, merged):
        _, snapshot = merged
        # Hits accrue on every vehicle; misses can be zero when forked
        # workers inherit an already-warm evaluator cache.
        assert snapshot.counter("policy.cache_hits") > 0

    def test_pickle_transfer_merges_too(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos", vehicles=16, workers=2, seed=5,
            spec_transfer="pickle",
        )
        _, snapshot = _run(config)
        assert snapshot.counter("vehicles.simulated") == 16
        assert snapshot.counter("shm.segments_written") == 0

    def test_disabled_parallel_run_ships_no_snapshots(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos", vehicles=8, workers=2, seed=5
        )
        with FleetSession(config) as session:
            session.run()
            assert session.metrics_snapshot().empty

    def test_matrix_accumulates_across_runs(self):
        config = ExperimentConfig(
            scenario="fleet_replay_storm", vehicles=6, workers=2, seed=5
        )
        with FleetSession(config, telemetry=True) as session:
            session.run_matrix([{}, {"trace_level": "ring"}])
            snapshot = session.metrics_snapshot()
        assert snapshot.counter("session.runs") == 2
        assert snapshot.counter("vehicles.simulated") == 12


class TestCliMetrics:
    def _run_cli(self, tmp_path, *extra):
        out = tmp_path / "metrics.json"
        code = cli_main(
            [
                "fleet", "run", "--scenario", "fleet_replay_storm",
                "--vehicles", "8", "--workers", "2", "--seed", "5",
                "--metrics", str(out), *extra,
            ]
        )
        assert code == 0
        return out

    def test_metrics_json_written(self, tmp_path, capsys):
        out = self._run_cli(tmp_path)
        capsys.readouterr()
        snapshot = MetricsSnapshot.from_json(out.read_text())
        assert snapshot.counter("vehicles.simulated") == 8
        assert snapshot.histogram("phase.simulate.vehicle.wall_seconds").count == 8

    def test_metrics_prom_format(self, tmp_path, capsys):
        out = tmp_path / "metrics.prom"
        code = cli_main(
            [
                "fleet", "run", "--scenario", "fleet_replay_storm",
                "--vehicles", "4", "--seed", "5",
                "--metrics", str(out), "--metrics-format", "prom",
            ]
        )
        capsys.readouterr()
        assert code == 0
        assert "repro_vehicles_simulated 4" in out.read_text()

    def test_fingerprint_identical_with_and_without_metrics(self, tmp_path, capsys):
        args = [
            "fleet", "run", "--scenario", "fleet_replay_storm",
            "--vehicles", "8", "--workers", "2", "--seed", "5", "--json",
        ]
        plain = tmp_path / "plain.json"
        with_metrics = tmp_path / "with_metrics.json"
        assert cli_main([*args, str(plain)]) == 0
        assert cli_main(
            [*args, str(with_metrics), "--metrics", str(tmp_path / "m.json")]
        ) == 0
        capsys.readouterr()
        assert (
            json.loads(plain.read_text())["fingerprint"]
            == json.loads(with_metrics.read_text())["fingerprint"]
        )

    def test_metrics_show_table(self, tmp_path, capsys):
        out = self._run_cli(tmp_path)
        capsys.readouterr()
        assert cli_main(["metrics", "show", str(out)]) == 0
        text = capsys.readouterr().out
        assert "counters:" in text
        assert "vehicles.simulated" in text

    def test_metrics_show_prom(self, tmp_path, capsys):
        out = self._run_cli(tmp_path)
        capsys.readouterr()
        assert cli_main(["metrics", "show", str(out), "--format", "prom"]) == 0
        assert "# TYPE repro_vehicles_simulated counter" in capsys.readouterr().out

    def test_metrics_show_json_round_trip(self, tmp_path, capsys):
        out = self._run_cli(tmp_path)
        capsys.readouterr()
        assert cli_main(["metrics", "show", str(out), "--format", "json"]) == 0
        rendered = capsys.readouterr().out
        assert MetricsSnapshot.from_json(rendered) == MetricsSnapshot.from_json(
            out.read_text()
        )

    def test_metrics_show_missing_file_errors(self, tmp_path, capsys):
        assert cli_main(["metrics", "show", str(tmp_path / "nope.json")]) == 2
        assert "error" in capsys.readouterr().err
