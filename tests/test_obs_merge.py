"""Snapshot-merge algebra and telemetry/fingerprint equivalence.

Two properties carry the whole telemetry design:

1. :func:`repro.obs.export.merge_snapshots` is associative and
   commutative (hypothesis-swept), which is what lets per-worker,
   per-chunk delta snapshots fold in any grouping -- arrival order,
   vehicle-id order, all at once -- to the same fleet-wide total.
   Float sums are kept *exact* by drawing values as multiples of
   1/1024 with bounded magnitude, so the assertions are bitwise.

2. Telemetry is invisible to results: a metrics-enabled run's fleet
   fingerprint is bit-identical to a disabled run's at 1 and 4 workers,
   across both spec-transfer modes.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import ExperimentConfig
from repro.api.session import FleetSession
from repro.obs.export import HistogramSnapshot, MetricsSnapshot, merge_snapshots
from repro.obs.metrics import DEFAULT_TIME_BUCKETS

# -- strategies ---------------------------------------------------------------

#: Floats whose sums are exact in binary: n/1024 with |n| <= 2**20.
exact_floats = st.integers(min_value=-(2**20), max_value=2**20).map(
    lambda n: n / 1024.0
)

metric_names = st.sampled_from(
    ["pool.builds", "vehicles.simulated", "shm.bytes_written", "policy.cache_hits"]
)


@st.composite
def histogram_snapshots(draw):
    buckets = DEFAULT_TIME_BUCKETS
    counts = tuple(
        draw(st.integers(min_value=0, max_value=1000))
        for _ in range(len(buckets) + 1)
    )
    return HistogramSnapshot(
        buckets=buckets,
        counts=counts,
        sum=draw(exact_floats),
        count=sum(counts),
    )


@st.composite
def snapshots(draw):
    return MetricsSnapshot.build(
        counters=draw(
            st.dictionaries(metric_names, st.integers(0, 10**9), max_size=4)
        ),
        gauges=draw(st.dictionaries(metric_names, exact_floats, max_size=4)),
        histograms=draw(
            st.dictionaries(metric_names, histogram_snapshots(), max_size=2)
        ),
    )


# -- merge algebra ------------------------------------------------------------


class TestMergeAlgebra:
    @settings(max_examples=100, deadline=None)
    @given(snapshots(), snapshots())
    def test_commutative(self, a, b):
        assert merge_snapshots([a, b]) == merge_snapshots([b, a])

    @settings(max_examples=100, deadline=None)
    @given(snapshots(), snapshots(), snapshots())
    def test_associative(self, a, b, c):
        left = merge_snapshots([merge_snapshots([a, b]), c])
        right = merge_snapshots([a, merge_snapshots([b, c])])
        assert left == right

    @settings(max_examples=50, deadline=None)
    @given(snapshots())
    def test_empty_is_identity(self, a):
        assert merge_snapshots([a, MetricsSnapshot()]) == a
        assert merge_snapshots([MetricsSnapshot(), a]) == a

    @settings(max_examples=50, deadline=None)
    @given(snapshots(), snapshots())
    def test_round_trips_through_dict(self, a, b):
        merged = merge_snapshots([a, b])
        assert MetricsSnapshot.from_dict(merged.to_dict()) == merged

    @settings(max_examples=50, deadline=None)
    @given(snapshots(), snapshots())
    def test_counters_add(self, a, b):
        merged = merge_snapshots([a, b])
        names = {n for n, _ in a.counters} | {n for n, _ in b.counters}
        for name in names:
            assert merged.counter(name) == a.counter(name) + b.counter(name)

    def test_histogram_bucket_mismatch_raises(self):
        h1 = HistogramSnapshot(buckets=(1.0,), counts=(1, 0))
        h2 = HistogramSnapshot(buckets=(2.0,), counts=(0, 1))
        a = MetricsSnapshot.build(histograms={"h": h1})
        b = MetricsSnapshot.build(histograms={"h": h2})
        try:
            merge_snapshots([a, b])
        except ValueError as error:
            assert "buckets" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected ValueError")


# -- telemetry is invisible to results ---------------------------------------


def _fingerprint(config: ExperimentConfig, telemetry: bool) -> str:
    with FleetSession(config, telemetry=telemetry) as session:
        result = session.run()
        if telemetry:
            # The enabled run must actually have measured something,
            # or this equivalence test is vacuous.
            snapshot = session.metrics_snapshot()
            assert snapshot.counter("vehicles.simulated") == config.vehicles
    return result.fingerprint()


class TestTelemetryInvisibleToFingerprints:
    def test_single_worker(self):
        config = ExperimentConfig(
            scenario="fleet_replay_storm", vehicles=12, workers=1, seed=11
        )
        assert _fingerprint(config, True) == _fingerprint(config, False)

    def test_four_workers_shm(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos",
            vehicles=24,
            workers=4,
            seed=11,
            spec_transfer="shm",
        )
        assert _fingerprint(config, True) == _fingerprint(config, False)

    def test_four_workers_pickle(self):
        config = ExperimentConfig(
            scenario="mixed_ev_dos",
            vehicles=24,
            workers=4,
            seed=11,
            spec_transfer="pickle",
        )
        assert _fingerprint(config, True) == _fingerprint(config, False)

    def test_worker_counts_agree_with_telemetry_on(self):
        base = dict(scenario="fleet_replay_storm", vehicles=16, seed=3)
        one = ExperimentConfig(workers=1, **base)
        four = ExperimentConfig(workers=4, **base)
        assert _fingerprint(one, True) == _fingerprint(four, True)

    def test_config_is_telemetry_free(self):
        # Telemetry is a session/runtime option: it must not appear in
        # the config surface at all, so config hashes cannot see it.
        config = ExperimentConfig(scenario="fleet_replay_storm", vehicles=4)
        assert "telemetry" not in config.to_dict()
        assert "metrics" not in config.to_dict()
