"""The benchmark JSON report writer preserves sections across modules.

The regression this pins: ``--json BENCH_fleet.json`` runs spanning
several benchmark modules must accumulate every module's sections --
including when the file is rewritten, truncated or corrupted between
two records (the in-run section cache wins over whatever is on disk).
"""

import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "benchmarks"))

from bench_json import BenchJsonWriter  # noqa: E402


def _read(path: Path) -> dict:
    return json.loads(path.read_text())


class TestDisabled:
    def test_none_path_is_noop(self, tmp_path):
        writer = BenchJsonWriter(None)
        assert not writer.enabled
        writer.record("fleet", {"a": 1})  # must not raise, must write nothing
        assert list(tmp_path.iterdir()) == []


class TestSectionPreservation:
    def test_two_sections_accumulate(self, tmp_path):
        path = tmp_path / "bench.json"
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"vehicles_per_second": 100.0})
        writer.record("hotpath", {"speedup": 2.0})
        assert _read(path) == {
            "fleet": {"vehicles_per_second": 100.0},
            "hotpath": {"speedup": 2.0},
        }

    def test_preserves_sections_from_previous_run(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"previous": {"kept": True}}))
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"a": 1})
        assert _read(path) == {"previous": {"kept": True}, "fleet": {"a": 1}}

    def test_survives_file_clobbered_between_records(self, tmp_path):
        path = tmp_path / "bench.json"
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"a": 1})
        path.write_text(json.dumps({"external": {"b": 2}}))  # external rewrite
        writer.record("hotpath", {"c": 3})
        report = _read(path)
        assert report["fleet"] == {"a": 1}  # cached section restored
        assert report["hotpath"] == {"c": 3}
        assert report["external"] == {"b": 2}  # and the external one kept

    def test_survives_corrupt_file(self, tmp_path):
        path = tmp_path / "bench.json"
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"a": 1})
        path.write_text("{not json")
        writer.record("hotpath", {"b": 2})
        assert _read(path) == {"fleet": {"a": 1}, "hotpath": {"b": 2}}

    def test_survives_non_object_file(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps([1, 2, 3]))
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"a": 1})
        assert _read(path) == {"fleet": {"a": 1}}


class TestSectionMerging:
    def test_same_section_merges_keys_in_run(self, tmp_path):
        path = tmp_path / "bench.json"
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"a": 1})
        writer.record("fleet", {"b": 2})
        assert _read(path) == {"fleet": {"a": 1, "b": 2}}

    def test_same_section_new_key_wins(self, tmp_path):
        path = tmp_path / "bench.json"
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"a": 1})
        writer.record("fleet", {"a": 9})
        assert _read(path) == {"fleet": {"a": 9}}

    def test_merges_with_on_disk_section_keys(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"fleet": {"disk_only": True}}))
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"a": 1})
        assert _read(path) == {"fleet": {"disk_only": True, "a": 1}}

    def test_run_payload_beats_disk_on_key_clash(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({"fleet": {"a": 0}}))
        writer = BenchJsonWriter(path)
        writer.record("fleet", {"a": 1})
        assert _read(path) == {"fleet": {"a": 1}}

    def test_output_is_sorted_and_newline_terminated(self, tmp_path):
        path = tmp_path / "bench.json"
        writer = BenchJsonWriter(path)
        writer.record("z", {"k": 1})
        writer.record("a", {"k": 2})
        text = path.read_text()
        assert text.endswith("\n")
        assert text.index('"a"') < text.index('"z"')
