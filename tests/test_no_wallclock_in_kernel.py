"""Determinism lint over the simulation packages (tier-1 enforcement).

Runs ``tools/check_determinism.py`` in-process: no ambient wall-clock,
calendar or module-level randomness may reach simulation code.  The
positive cases pin the checker itself -- each forbidden construct is
actually caught, and the sanctioned patterns pass.
"""

import sys
import textwrap
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "tools"))

import check_determinism  # noqa: E402


def _check_source(tmp_path, source: str):
    path = tmp_path / "module.py"
    path.write_text(textwrap.dedent(source), encoding="utf-8")
    return check_determinism.check_file(path)


class TestSimulationPackagesAreClean:
    def test_default_roots_have_no_violations(self):
        violations = check_determinism.check_roots()
        assert violations == [], "\n".join(str(v) for v in violations)

    def test_default_roots_exist(self):
        for root in check_determinism.DEFAULT_ROOTS:
            assert (REPO_ROOT / root).is_dir(), root

    def test_obs_clock_is_the_only_time_importer_in_src(self):
        # The sanctioned boundary: exactly one module under src/ may
        # import time -- repro.obs.clock.  Everything else (including
        # the obs package itself) goes through it.
        importers = []
        for path in sorted((REPO_ROOT / "src").rglob("*.py")):
            for violation in check_determinism.check_file(path):
                if "'time'" in violation.message:
                    importers.append(path)
        assert importers == [REPO_ROOT / "src" / "repro" / "obs" / "clock.py"]


class TestCheckerCatchesViolations:
    def test_import_time(self, tmp_path):
        violations = _check_source(tmp_path, "import time\n")
        assert len(violations) == 1
        assert "repro.obs.clock" in violations[0].message

    def test_from_time_import(self, tmp_path):
        violations = _check_source(tmp_path, "from time import perf_counter\n")
        assert len(violations) == 1

    def test_import_datetime(self, tmp_path):
        violations = _check_source(tmp_path, "import datetime\n")
        assert len(violations) == 1
        assert "calendar" in violations[0].message

    def test_from_datetime_import(self, tmp_path):
        violations = _check_source(tmp_path, "from datetime import datetime\n")
        assert len(violations) == 1

    def test_bare_random_call(self, tmp_path):
        violations = _check_source(
            tmp_path, "import random\nx = random.randint(0, 3)\n"
        )
        assert len(violations) == 1
        assert "seeded random.Random" in violations[0].message

    def test_from_random_import_function(self, tmp_path):
        violations = _check_source(tmp_path, "from random import randint\n")
        assert len(violations) == 1

    def test_unseeded_random_ctor(self, tmp_path):
        violations = _check_source(
            tmp_path, "import random\nrng = random.Random()\n"
        )
        assert len(violations) == 1
        assert "without a seed" in violations[0].message

    def test_unseeded_bare_random_ctor(self, tmp_path):
        violations = _check_source(
            tmp_path, "from random import Random\nrng = Random()\n"
        )
        assert len(violations) == 1
        assert "without a seed" in violations[0].message

    def test_reports_path_and_line(self, tmp_path):
        violations = _check_source(tmp_path, "x = 1\nimport time\n")
        assert violations[0].line == 2
        assert str(violations[0]).endswith(
            "module.py:2: import 'time' forbidden: route timing through "
            "repro.obs.clock"
        )


class TestCheckerAllowsSanctionedPatterns:
    def test_seeded_random_instance(self, tmp_path):
        violations = _check_source(
            tmp_path,
            """
            import random

            def script(seed: int, rng: random.Random | None = None):
                rng = rng if rng is not None else random.Random(seed)
                return rng.randint(0, 3)
            """,
        )
        assert violations == []

    def test_obs_clock_usage(self, tmp_path):
        violations = _check_source(
            tmp_path,
            """
            from repro.obs import clock

            def measure():
                return clock.wall(), clock.cpu()
            """,
        )
        assert violations == []

    def test_relative_imports_untouched(self, tmp_path):
        violations = _check_source(tmp_path, "from . import time\n")
        assert violations == []


class TestCalendarClockRule:
    """``clock.now`` is reserved for the service layer (per-root exemption)."""

    def test_clock_now_attribute_flagged(self, tmp_path):
        violations = _check_source(
            tmp_path,
            """
            from repro.obs import clock

            def stamp():
                return clock.now()
            """,
        )
        assert len(violations) == 1
        assert "calendar time" in violations[0].message

    def test_from_clock_import_now_flagged(self, tmp_path):
        violations = _check_source(
            tmp_path, "from repro.obs.clock import now\n"
        )
        assert len(violations) == 1
        assert "service layer" in violations[0].message

    def test_durations_still_allowed(self, tmp_path):
        violations = _check_source(
            tmp_path,
            """
            from repro.obs import clock

            def span():
                return clock.wall(), clock.cpu()
            """,
        )
        assert violations == []

    def test_exemption_allows_clock_now(self, tmp_path):
        path = tmp_path / "store.py"
        path.write_text(
            "from repro.obs import clock\nstamp = clock.now()\n",
            encoding="utf-8",
        )
        assert check_determinism.check_file(path, allow_calendar_clock=True) == []

    def test_service_roots_exist(self):
        for root in check_determinism.SERVICE_ROOTS:
            assert (REPO_ROOT / root).is_dir(), root

    def test_service_package_needs_the_exemption(self):
        # The shipped service code really does read calendar time (lease
        # deadlines, job timestamps), so linting it *strictly* must flag
        # it -- proof the exemption is load-bearing and the package is
        # actually walked by the lint.
        strict = check_determinism.check_roots(
            [REPO_ROOT / root for root in check_determinism.SERVICE_ROOTS]
        )
        assert any("calendar time" in v.message for v in strict)
        # ... while every *other* rule holds there: the only strict-mode
        # complaints are calendar-clock ones.
        assert all("calendar time" in v.message for v in strict)

    def test_service_package_clean_under_default_rules(self):
        # check_roots() with no arguments applies the per-root pairing:
        # simulation packages strict, service packages exempted.
        assert check_determinism.check_roots() == []


class TestResilienceSeedDiscipline:
    """``resilience.py`` RNGs must be seeded through ``derive_seed``."""

    def _check_resilience(self, tmp_path, source: str):
        path = tmp_path / "resilience.py"
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return check_determinism.check_file(path)

    def test_derive_seed_call_passes(self, tmp_path):
        violations = self._check_resilience(
            tmp_path,
            """
            import random

            from repro.core.seeding import derive_seed

            def jitter(seed: int, chunk: int, attempt: int) -> float:
                stream = random.Random(
                    derive_seed(seed, f"resilience/backoff/chunk={chunk}")
                )
                return stream.random()
            """,
        )
        assert violations == []

    def test_plain_seed_flagged(self, tmp_path):
        violations = self._check_resilience(
            tmp_path, "import random\nrng = random.Random(42)\n"
        )
        assert len(violations) == 1
        assert "derive_seed" in violations[0].message

    def test_same_source_allowed_outside_resilience(self, tmp_path):
        # The derive_seed requirement is scoped to resilience.py; a
        # plain explicit seed stays legal everywhere else.
        path = tmp_path / "elsewhere.py"
        path.write_text("import random\nrng = random.Random(42)\n", encoding="utf-8")
        assert check_determinism.check_file(path) == []

    def test_unseeded_still_flagged_as_unseeded(self, tmp_path):
        violations = self._check_resilience(
            tmp_path, "import random\nrng = random.Random()\n"
        )
        assert len(violations) == 1
        assert "without a seed" in violations[0].message

    def test_shipped_resilience_module_is_clean(self):
        path = REPO_ROOT / "src" / "repro" / "fleet" / "resilience.py"
        assert check_determinism.check_file(path) == []


class TestVectorisedSeedDiscipline:
    """``vectorised.py`` RNGs must be seeded through ``derive_seed``."""

    def _check_vectorised(self, tmp_path, source: str):
        path = tmp_path / "vectorised.py"
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return check_determinism.check_file(path)

    def test_derive_seed_call_passes(self, tmp_path):
        violations = self._check_vectorised(
            tmp_path,
            """
            import random

            from repro.core.seeding import derive_seed

            def probe_rng(seed: int) -> random.Random:
                return random.Random(derive_seed(seed, "vectorised/probe-gate"))
            """,
        )
        assert violations == []

    def test_plain_seed_flagged(self, tmp_path):
        violations = self._check_vectorised(
            tmp_path, "import random\nrng = random.Random(2018)\n"
        )
        assert len(violations) == 1
        assert "derive_seed" in violations[0].message
        assert "vectorised.py" in violations[0].message

    def test_same_source_allowed_outside_vectorised(self, tmp_path):
        path = tmp_path / "elsewhere.py"
        path.write_text("import random\nrng = random.Random(2018)\n", encoding="utf-8")
        assert check_determinism.check_file(path) == []

    def test_shipped_vectorised_module_is_clean(self):
        path = REPO_ROOT / "src" / "repro" / "fleet" / "vectorised.py"
        assert check_determinism.check_file(path) == []


class TestCommandLine:
    def test_main_clean(self):
        assert check_determinism.main([]) == 0

    def test_main_flags_violations(self, tmp_path, capsys):
        bad = tmp_path / "dirty"
        bad.mkdir()
        (bad / "mod.py").write_text("import time\n", encoding="utf-8")
        assert check_determinism.main([str(bad)]) == 1
        err = capsys.readouterr().err
        assert "1 determinism violation(s)" in err

    def test_main_missing_root(self, tmp_path):
        try:
            check_determinism.main([str(tmp_path / "nope")])
        except FileNotFoundError as error:
            assert "does not exist" in str(error)
        else:  # pragma: no cover
            raise AssertionError("expected FileNotFoundError")
