"""Tests for the threat-model document, countermeasures and report rendering."""

import pytest

from repro.threat.assets import Asset
from repro.threat.countermeasures import (
    Countermeasure,
    CountermeasureCatalog,
    CountermeasureKind,
    DeploymentPhase,
)
from repro.threat.dread import DreadScore
from repro.threat.entry_points import EntryPoint
from repro.threat.model import ThreatModel, ThreatModelStep, UseCase
from repro.threat.report import render_model_report, render_table, render_threat_table
from repro.threat.stride import StrideClassification
from repro.threat.threats import Threat


def make_model() -> ThreatModel:
    model = ThreatModel(UseCase("Connected Car", security_requirements=("req-1",)))
    model.add_asset(Asset("EV-ECU"))
    model.add_asset(Asset("Engine"))
    model.add_entry_point(EntryPoint("Sensors", exposes=("EV-ECU", "Engine")))
    model.add_threat(
        Threat(
            identifier="T1",
            description="Spoofed disable",
            asset="EV-ECU",
            entry_points=("Sensors",),
            stride=StrideClassification.parse("STD"),
            dread=DreadScore(8, 5, 4, 6, 4),
        )
    )
    return model


class TestCountermeasures:
    def test_policy_kinds_are_runtime_enforceable(self):
        assert CountermeasureKind.HARDWARE_POLICY.enforceable_at_runtime
        assert CountermeasureKind.SOFTWARE_POLICY.updateable_post_deployment
        assert not CountermeasureKind.GUIDELINE.enforceable_at_runtime

    def test_policy_defaults_to_post_deployment_phase(self):
        cm = Countermeasure("CM1", "hpe rule", CountermeasureKind.HARDWARE_POLICY)
        assert cm.deployment_phase is DeploymentPhase.POST_DEPLOYMENT
        assert cm.is_policy

    def test_guideline_keeps_design_phase(self):
        cm = Countermeasure("CM2", "guideline", CountermeasureKind.GUIDELINE)
        assert cm.deployment_phase is DeploymentPhase.DESIGN

    def test_effectiveness_bounds(self):
        with pytest.raises(ValueError):
            Countermeasure("CM3", "x", CountermeasureKind.GUIDELINE, effectiveness=1.5)

    def test_catalog_queries(self):
        catalog = CountermeasureCatalog(
            [
                Countermeasure("CM1", "hpe", CountermeasureKind.HARDWARE_POLICY,
                               mitigates=("T1",)),
                Countermeasure("CM2", "guide", CountermeasureKind.GUIDELINE,
                               mitigates=("T2",)),
            ]
        )
        assert len(catalog.policies()) == 1
        assert len(catalog.guidelines()) == 1
        assert [cm.identifier for cm in catalog.for_threat("T1")] == ["CM1"]
        assert catalog.unmitigated_threats(["T1", "T2", "T3"]) == ["T3"]
        assert catalog.coverage(["T1", "T2", "T3"]) == pytest.approx(2 / 3)
        assert catalog.coverage([]) == 1.0

    def test_catalog_duplicate_rejected(self):
        catalog = CountermeasureCatalog()
        catalog.add(Countermeasure("CM1", "x", CountermeasureKind.GUIDELINE))
        with pytest.raises(ValueError):
            catalog.add(Countermeasure("CM1", "y", CountermeasureKind.GUIDELINE))


class TestThreatModel:
    def test_step_tracking(self):
        model = make_model()
        completed = model.completed_steps()
        assert ThreatModelStep.IDENTIFY_ASSETS in completed
        assert ThreatModelStep.THREAT_RATING in completed
        assert ThreatModelStep.DETERMINE_COUNTERMEASURES not in completed
        assert 0 < model.progress < 1
        assert not model.is_complete

    def test_completes_after_countermeasure(self):
        model = make_model()
        model.add_countermeasure(
            Countermeasure("CM1", "hpe", CountermeasureKind.HARDWARE_POLICY, mitigates=("T1",))
        )
        assert model.is_complete
        assert model.progress == 1.0

    def test_threat_requires_registered_asset(self):
        model = make_model()
        with pytest.raises(KeyError):
            model.add_threat(
                Threat(
                    identifier="T9", description="x", asset="Unknown",
                    entry_points=("Sensors",),
                    stride=StrideClassification.parse("S"),
                    dread=DreadScore(1, 1, 1, 1, 1),
                )
            )

    def test_threat_requires_registered_entry_point(self):
        model = make_model()
        with pytest.raises(KeyError):
            model.add_threat(
                Threat(
                    identifier="T9", description="x", asset="EV-ECU",
                    entry_points=("Unknown",),
                    stride=StrideClassification.parse("S"),
                    dread=DreadScore(1, 1, 1, 1, 1),
                )
            )

    def test_countermeasure_requires_known_threat(self):
        model = make_model()
        with pytest.raises(KeyError):
            model.add_countermeasure(
                Countermeasure("CM1", "x", CountermeasureKind.GUIDELINE, mitigates=("T9",))
            )

    def test_validate_reports_unthreatened_assets_and_uncovered_threats(self):
        model = make_model()
        findings = model.validate()
        assert any("Engine" in f for f in findings)
        assert any("T1" in f for f in findings)

    def test_summary(self):
        summary = make_model().summary()
        assert summary["assets"] == 2
        assert summary["threats"] == 1
        assert summary["use_case"] == "Connected Car"

    def test_risk_assessment_integration(self):
        assessment = make_model().risk_assessment()
        assert assessment.per_asset_summary()["EV-ECU"].threat_count == 1


class TestReportRendering:
    def test_render_table_basic(self):
        table = render_table(("A", "B"), [("1", "22"), ("333", "4")])
        lines = table.splitlines()
        assert lines[0].startswith("+")
        assert "A" in lines[1] and "B" in lines[1]
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_render_table_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            render_table(("A", "B"), [("only-one",)])

    def test_render_threat_table_contains_threat(self):
        model = make_model()
        text = render_threat_table(model.threats)
        assert "T1" in text
        assert "STD" in text
        assert "5.4" in text

    def test_render_model_report_sections(self):
        report = render_model_report(make_model())
        assert "Threat model: Connected Car" in report
        assert "Assets (2)" in report
        assert "Entry points (1)" in report
        assert "Validation findings" in report
