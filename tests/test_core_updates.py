"""Tests for signed post-deployment policy updates."""

import pytest

from repro.core.dsl import parse_policy
from repro.core.enforcement import EnforcementConfig
from repro.core.policy import AccessRule, Direction, RuleEffect
from repro.core.updates import PolicyUpdateBundle, PolicyUpdateClient, UpdateRejected

SIGNING_KEY = b"oem-signing-key"
WRONG_KEY = b"someone-else"


@pytest.fixture()
def deployment(builder):
    """A deployed protected car with an update client."""
    car = builder.build_car(EnforcementConfig.full())
    client = PolicyUpdateClient(car.enforcement_coordinator, SIGNING_KEY)
    return car, client


def make_updated_policy(builder, new_rule_id="P-NEW-1"):
    """The active policy plus one newly derived rule, version-bumped."""
    updated = builder.model.policy.next_version("respond to newly discovered threat")
    updated.add_rule(
        AccessRule(
            rule_id=new_rule_id,
            effect=RuleEffect.DENY,
            node="Gateway",
            direction=Direction.WRITE,
            messages=("DIAG_REQUEST",),
            derived_from="T-NEW",
        )
    )
    return updated


class TestBundle:
    def test_create_and_verify(self, builder):
        policy = make_updated_policy(builder)
        bundle = PolicyUpdateBundle.create(policy, SIGNING_KEY, description="hotfix")
        assert bundle.version == policy.version
        assert bundle.verify(SIGNING_KEY)
        assert not bundle.verify(WRONG_KEY)

    def test_parse_restores_rules(self, builder):
        policy = make_updated_policy(builder)
        bundle = PolicyUpdateBundle.create(policy, SIGNING_KEY)
        restored = bundle.parse()
        assert restored.version == policy.version
        assert "P-NEW-1" in restored

    def test_tampered_text_fails_verification(self, builder):
        bundle = PolicyUpdateBundle.create(make_updated_policy(builder), SIGNING_KEY)
        tampered = PolicyUpdateBundle(
            policy_text=bundle.policy_text.replace("deny", "allow"),
            version=bundle.version,
            signature=bundle.signature,
        )
        assert not tampered.verify(SIGNING_KEY)

    def test_tampered_version_fails_verification(self, builder):
        bundle = PolicyUpdateBundle.create(make_updated_policy(builder), SIGNING_KEY)
        tampered = PolicyUpdateBundle(
            policy_text=bundle.policy_text,
            version=bundle.version + 5,
            signature=bundle.signature,
        )
        assert not tampered.verify(SIGNING_KEY)


class TestClient:
    def test_valid_update_is_applied_to_the_vehicle(self, builder, deployment):
        car, client = deployment
        policy = make_updated_policy(builder)
        bundle = PolicyUpdateBundle.create(policy, SIGNING_KEY)
        applied = client.apply(bundle, car)
        assert applied.version == policy.version
        assert client.current_version == policy.version
        assert client.applied_versions == [policy.version]
        assert "P-NEW-1" in car.enforcement_coordinator.policy

    def test_bad_signature_rejected(self, builder, deployment):
        car, client = deployment
        bundle = PolicyUpdateBundle.create(make_updated_policy(builder), WRONG_KEY)
        with pytest.raises(UpdateRejected):
            client.apply(bundle, car)
        assert client.rejected_bundles == 1
        assert client.applied_versions == []

    def test_rollback_rejected(self, builder, deployment):
        car, client = deployment
        same_version = builder.model.policy  # not newer than the enforced version
        bundle = PolicyUpdateBundle.create(same_version, SIGNING_KEY)
        with pytest.raises(UpdateRejected):
            client.apply(bundle, car)
        assert client.rejected_bundles == 1

    def test_update_changes_runtime_enforcement(self, builder, deployment):
        """The paper's headline property: a new threat is countered by a
        distributed policy update with no redesign of the deployed vehicle."""
        car, client = deployment
        coordinator = car.enforcement_coordinator
        catalog = car.catalog

        # Newly discovered threat: diagnostic requests abused from the gateway
        # in normal mode.  Before the update the gateway may write them only in
        # diagnostic mode (base behaviour); the update forbids them entirely.
        updated = make_updated_policy(builder)
        client.apply(PolicyUpdateBundle.create(updated, SIGNING_KEY), car)
        car.modes.enter_remote_diagnostic()
        gateway_engine = coordinator.engines["Gateway"]
        from repro.can.frame import CANFrame

        assert not gateway_engine.permit_write(
            CANFrame(can_id=catalog.id_of("DIAG_REQUEST"))
        )

    def test_update_text_is_human_reviewable(self, builder):
        bundle = PolicyUpdateBundle.create(make_updated_policy(builder), SIGNING_KEY)
        parsed = parse_policy(bundle.policy_text)
        assert len(parsed) == len(make_updated_policy(builder))
