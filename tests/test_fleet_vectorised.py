"""Parity and gating tests for :mod:`repro.fleet.vectorised`.

The lockstep backend's whole contract is outcome-exactness: every
deterministic field of every outcome it returns must equal what the
object kernel produces for the same spec, per-vehicle, bit for bit.
These tests assert that contract on every registered scenario, on
hand-built and hypothesis-generated spec streams (including mixed
eligible/fallback chunks and out-of-64-bit escape params), through both
the spec-list and columnar SpecBlock entry points, and end to end
through sessions at 1 and 4 workers in both transfer modes.  The gate,
the numpy-optionality story and the config surface are pinned too.
"""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import ConfigError, ExperimentConfig, FleetSession
from repro.core.compiled import ID_SPACE, CompiledDecisionTable, build_mask
from repro.fleet import vectorised
from repro.fleet.runner import simulate_vehicle
from repro.fleet.scenarios import (
    ENFORCEMENT_LABELS,
    VehicleAction,
    VehicleSpec,
    get_scenario,
    registered_scenarios,
    temporary_scenario,
)
from repro.fleet.transfer import SpecBlock
from repro.fleet.vectorised import (
    VECTORISABLE_KINDS,
    BackendParityError,
    BackendUnavailableError,
    parity_gate,
    permit_mask_probe,
    scenario_backend_eligibility,
    simulate_block_vectorised,
    simulate_specs_vectorised,
    spec_eligibility,
    table_permits,
)

SCENARIO_NAMES = [scenario.name for scenario in registered_scenarios()]

requires_numpy = pytest.mark.skipif(
    not vectorised.numpy_available(), reason="numpy (repro[fast]) not installed"
)


def _tuples(outcomes):
    return [outcome.deterministic_tuple() for outcome in outcomes]


def _object_tuples(specs):
    return _tuples(simulate_vehicle(spec) for spec in specs)


def _spec(vehicle_id, actions, enforcement="hpe+selinux", duration_s=0.1, seed=7):
    return VehicleSpec(
        vehicle_id=vehicle_id,
        scenario="hand-built",
        enforcement=enforcement,
        seed=seed,
        duration_s=duration_s,
        actions=tuple(actions),
    )


class TestEligibility:
    def test_plain_drive_spec_is_eligible(self):
        spec = _spec(0, [VehicleAction(0.0, "drive", {"accel": 55})])
        assert spec_eligibility(spec) == (True, None)

    def test_fuzz_spec_is_ineligible_with_named_reason(self):
        spec = _spec(0, [VehicleAction(0.0, "fuzz", {"frames": 10})])
        ok, reason = spec_eligibility(spec)
        assert not ok
        assert "fuzz" in reason
        assert "seeded RNG" in reason

    def test_fuzz_is_the_only_excluded_builtin_kind(self):
        # Pin the subset against the runner's dispatch table: every kind
        # the kernel understands except fuzz is vectorisable.
        assert VECTORISABLE_KINDS == {
            "drive",
            "park_and_arm",
            "attack",
            "targeted_dos",
            "flood",
            "replay",
            "policy_update",
        }

    def test_scenario_eligibility_does_not_need_numpy(self, monkeypatch):
        monkeypatch.setattr(vectorised, "_np", None)
        report = scenario_backend_eligibility(get_scenario("fuzz_probe"))
        assert report["vectorisable"] is False
        assert "fuzz" in report["reason"]
        assert "fuzz" in report["action_kinds"]

    def test_every_registered_scenario_classifies(self):
        vectorisable = {
            name: scenario_backend_eligibility(get_scenario(name))["vectorisable"]
            for name in SCENARIO_NAMES
        }
        assert vectorisable["baseline_cruise"] is True
        assert vectorisable["fuzz_probe"] is False
        for name, ok in vectorisable.items():
            report = scenario_backend_eligibility(get_scenario(name))
            if ok:
                assert report["reason"] is None
            else:
                assert report["reason"]


@requires_numpy
class TestPermitMaskProbe:
    def _table(self, seed=3):
        import random

        rng = random.Random(seed)
        read_ids = frozenset(rng.sample(range(ID_SPACE), k=64))
        write_ids = frozenset(rng.sample(range(ID_SPACE), k=64))
        return CompiledDecisionTable(
            node="probe-test",
            read_mask=build_mask(read_ids),
            write_mask=build_mask(write_ids),
        )

    def test_probe_matches_object_checks_over_the_whole_id_space(self):
        table = self._table()
        all_ids = range(ID_SPACE)
        for direction in ("read", "write"):
            probe = getattr(table, f"may_{direction}")
            mask = table_permits(table, list(all_ids), direction)
            assert [bool(bit) for bit in mask] == [probe(i) for i in all_ids]

    def test_out_of_range_ids_rejected(self):
        table = self._table()
        with pytest.raises(ValueError, match="standard space"):
            table_permits(table, [0, ID_SPACE], "read")
        with pytest.raises(ValueError, match="standard space"):
            table_permits(table, [-1], "write")

    def test_unknown_direction_rejected(self):
        with pytest.raises(ValueError, match="direction"):
            table_permits(self._table(), [0], "execute")

    def test_probe_reads_the_mask_zero_copy(self):
        mask = bytearray(256)
        mask[0] = 0b0000_0101  # ids 0 and 2
        got = permit_mask_probe(memoryview(bytes(mask)), [0, 1, 2, 3])
        assert [bool(bit) for bit in got] == [True, False, True, False]


@requires_numpy
class TestChunkParity:
    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_spec_list_path_is_outcome_exact(self, name):
        specs = get_scenario(name).vehicle_specs(10, seed=2018)
        assert _tuples(simulate_specs_vectorised(specs)) == _object_tuples(specs)

    @pytest.mark.parametrize("name", SCENARIO_NAMES)
    def test_columnar_block_path_is_outcome_exact(self, name):
        specs = get_scenario(name).vehicle_specs(10, seed=2018)
        block = SpecBlock.from_bytes(SpecBlock.encode(specs).to_bytes())
        assert _tuples(simulate_block_vectorised(block)) == _object_tuples(specs)

    def test_mixed_eligibility_chunk_falls_back_per_vehicle(self):
        # Interleave lockstep-able vehicles with fuzz vehicles: the
        # fallbacks run the object kernel in place, the rest broadcast,
        # and the chunk stays outcome-exact in original order.
        specs = []
        for i in range(9):
            if i % 3 == 2:
                actions = [VehicleAction(0.0, "fuzz", {"frames": 10})]
            else:
                actions = [VehicleAction(0.0, "drive", {"accel": 40 + 10 * (i % 2)})]
            specs.append(_spec(i, actions, seed=100 + i))
        assert _tuples(simulate_specs_vectorised(specs)) == _object_tuples(specs)
        block = SpecBlock.from_bytes(SpecBlock.encode(specs).to_bytes())
        assert _tuples(simulate_block_vectorised(block)) == _object_tuples(specs)

    def test_identical_behaviour_distinct_seeds_share_one_class(self):
        # The load-bearing seed-independence property: same behaviour
        # key, wildly different seeds, identical deterministic rows.
        actions = [VehicleAction(0.0, "drive", {"accel": 60})]
        specs = [_spec(i, actions, seed=i * 977 + 5) for i in range(6)]
        outcomes = simulate_specs_vectorised(specs)
        rows = {outcome.deterministic_tuple()[3:] for outcome in outcomes}
        assert len(rows) == 1
        assert _tuples(outcomes) == _object_tuples(specs)

    def test_out_of_band_escape_params_split_classes_not_correctness(self):
        # Params above the codec's 64-bit columns ride the escape table;
        # they must neither crash the block path nor merge classes.
        big = 2**80 + 17
        specs = [
            _spec(0, [VehicleAction(0.0, "drive", {"accel": 50, "band": big})]),
            _spec(1, [VehicleAction(0.0, "drive", {"accel": 50, "band": big})]),
            _spec(2, [VehicleAction(0.0, "drive", {"accel": 50, "band": big + 1})]),
            _spec(3, [VehicleAction(0.0, "drive", {"accel": 50})]),
        ]
        assert _tuples(simulate_specs_vectorised(specs)) == _object_tuples(specs)
        block = SpecBlock.from_bytes(SpecBlock.encode(specs).to_bytes())
        assert _tuples(simulate_block_vectorised(block)) == _object_tuples(specs)

    def test_int_valued_hand_built_specs_match_across_paths(self):
        # Int durations/times canonicalise to floats on construction, so
        # the spec-list and columnar paths agree on the behaviour key.
        specs = [
            _spec(i, [VehicleAction(0, "park_and_arm", {})], duration_s=1)
            for i in range(4)
        ]
        expected = _object_tuples(specs)
        assert _tuples(simulate_specs_vectorised(specs)) == expected
        block = SpecBlock.from_bytes(SpecBlock.encode(specs).to_bytes())
        assert _tuples(simulate_block_vectorised(block)) == expected

    def test_lockstep_refuses_non_counters_retention(self):
        specs = [_spec(0, [VehicleAction(0.0, "drive", {})])]
        with pytest.raises(ValueError, match="counters"):
            simulate_specs_vectorised(specs, trace_level="full")
        with pytest.raises(ValueError, match="compile_tables"):
            simulate_specs_vectorised(specs, compile_tables=False)


def _benign_action():
    drive = st.builds(
        lambda accel: VehicleAction(0.0, "drive", {"accel": accel}),
        st.integers(min_value=30, max_value=90),
    )
    park = st.just(VehicleAction(0.0, "park_and_arm", {}))
    update = st.just(VehicleAction(0.0, "policy_update", {"description": "sweep"}))
    return st.one_of(drive, park, update)


def _attack_action():
    # Attack primitives attach named rogue nodes, so the kernel allows
    # at most one per vehicle timeline -- the strategy mirrors that.
    attack = st.builds(
        lambda tid: VehicleAction(0.05, "attack", {"threat_id": tid}),
        st.sampled_from(["T01", "T05", "T13"]),
    )
    dos = st.builds(
        lambda target: VehicleAction(
            0.05, "targeted_dos", {"target": target, "repetitions": 1}
        ),
        st.sampled_from(["EV-ECU", "Engine", "EPS"]),
    )
    flood = st.builds(
        lambda frames: VehicleAction(
            0.05, "flood", {"frames": frames, "window_s": 0.05}
        ),
        st.integers(min_value=5, max_value=15),
    )
    replay = st.just(
        VehicleAction(
            0.05,
            "replay",
            {"messages": ("DOOR_UNLOCK_CMD",), "capture_duration_s": 0.05},
        )
    )
    fuzz = st.builds(
        lambda frames: VehicleAction(0.05, "fuzz", {"frames": frames}),
        st.integers(min_value=5, max_value=15),
    )
    return st.one_of(attack, dos, flood, replay, fuzz)


def _spec_stream():
    def build(rows):
        return [
            _spec(
                i,
                [a for a in (benign, attacky) if a is not None],
                enforcement=enforcement,
                seed=seed,
            )
            for i, (benign, attacky, enforcement, seed) in enumerate(rows)
        ]

    row = st.tuples(
        st.none() | _benign_action(),
        st.none() | _attack_action(),
        st.sampled_from(ENFORCEMENT_LABELS),
        st.integers(min_value=0, max_value=2**32),
    )
    return st.builds(build, st.lists(row, min_size=1, max_size=4))


@requires_numpy
class TestHypothesisParity:
    @settings(max_examples=10, deadline=None)
    @given(specs=_spec_stream())
    def test_random_spec_streams_are_outcome_exact(self, specs):
        expected = _object_tuples(specs)
        assert _tuples(simulate_specs_vectorised(specs)) == expected
        block = SpecBlock.from_bytes(SpecBlock.encode(specs).to_bytes())
        assert _tuples(simulate_block_vectorised(block)) == expected


@requires_numpy
class TestParityGate:
    def test_gate_passes_and_caches_the_verdict(self):
        parity_gate()
        key = vectorised._registry_key()
        assert vectorised._GATE_CACHE[key] is None
        parity_gate()  # cached: no recompute, no raise

    def test_registry_change_invalidates_the_cache_key(self):
        before = vectorised._registry_key()
        variant = dataclasses.replace(
            get_scenario("baseline_cruise"), name="gate_probe_variant"
        )
        with temporary_scenario(variant):
            assert vectorised._registry_key() != before
        assert vectorised._registry_key() == before

    def test_forced_divergence_raises_and_is_cached(self, monkeypatch):
        def corrupted(specs, **kwargs):
            outcomes = [simulate_vehicle(spec) for spec in specs]
            outcomes[0] = dataclasses.replace(
                outcomes[0], frames_transmitted=outcomes[0].frames_transmitted + 1
            )
            return outcomes

        monkeypatch.setattr(vectorised, "simulate_specs_vectorised", corrupted)
        try:
            with pytest.raises(BackendParityError, match="diverge"):
                parity_gate(force=True)
            # The failure verdict is cached: a later non-forced call
            # still refuses, even with the real implementation back.
            monkeypatch.undo()
            with pytest.raises(BackendParityError, match="diverge"):
                parity_gate()
        finally:
            vectorised._GATE_CACHE.clear()
        parity_gate()  # clean cache, real implementation: passes again

    def test_auto_backend_falls_back_when_the_gate_fails(self, monkeypatch):
        def failing_gate(force=False):
            raise BackendParityError("synthetic gate failure")

        monkeypatch.setattr(vectorised, "parity_gate", failing_gate)
        config = ExperimentConfig(
            scenario="baseline_cruise", vehicles=4, seed=2018, backend="auto"
        )
        with FleetSession(config) as session:
            assert session._resolve_backend(config) == "object"
        explicit = ExperimentConfig(
            scenario="baseline_cruise", vehicles=4, seed=2018, backend="vectorised"
        )
        with FleetSession(explicit) as session:
            with pytest.raises(BackendParityError):
                session._resolve_backend(explicit)


@requires_numpy
class TestSessionBackends:
    @pytest.mark.parametrize("transfer", ["shm", "pickle"])
    @pytest.mark.parametrize("workers", [1, 4])
    def test_fingerprints_identical_on_every_scenario(self, transfer, workers):
        # The ISSUE acceptance criterion, literally: every registered
        # scenario, both worker counts, both transfer modes.
        for name in SCENARIO_NAMES:
            fingerprints = {}
            for backend in ("object", "vectorised"):
                config = ExperimentConfig(
                    scenario=name,
                    vehicles=12,
                    seed=2018,
                    workers=workers,
                    spec_transfer=transfer,
                    backend=backend,
                )
                with FleetSession(config) as session:
                    fingerprints[backend] = session.run().fingerprint()
            assert fingerprints["object"] == fingerprints["vectorised"], (
                name,
                workers,
                transfer,
            )

    def test_all_fallback_scenario_still_exact_under_vectorised(self):
        fingerprints = {}
        for backend in ("object", "vectorised"):
            config = ExperimentConfig(
                scenario="fuzz_probe", vehicles=8, seed=2018, backend=backend
            )
            with FleetSession(config) as session:
                fingerprints[backend] = session.run().fingerprint()
        assert fingerprints["object"] == fingerprints["vectorised"]

    def test_auto_resolves_vectorised_only_in_the_proven_regime(self):
        eligible = ExperimentConfig(
            scenario="baseline_cruise", vehicles=4, backend="auto"
        )
        full_trace = ExperimentConfig(
            scenario="baseline_cruise", vehicles=4, backend="auto", trace_level="full"
        )
        with FleetSession(eligible) as session:
            assert session._resolve_backend(eligible) == "vectorised"
            assert session._resolve_backend(full_trace) == "object"

    def test_telemetry_reports_lockstep_and_fallback_counters(self):
        config = ExperimentConfig(
            scenario="baseline_cruise", vehicles=10, seed=2018, backend="vectorised"
        )
        with FleetSession(config, telemetry=True) as session:
            session.run()
            snapshot = session.metrics_snapshot()
        assert snapshot.counter("backend.vectorised.chunks") >= 1
        assert snapshot.counter("backend.vectorised.vehicles") == 10
        assert 1 <= snapshot.counter("backend.vectorised.classes") <= 10
        assert snapshot.counter("backend.fallback_vehicles") == 0

        mixed = ExperimentConfig(
            scenario="fuzz_probe", vehicles=6, seed=2018, backend="vectorised"
        )
        with FleetSession(mixed, telemetry=True) as session:
            session.run()
            snapshot = session.metrics_snapshot()
        assert snapshot.counter("backend.fallback_vehicles") == 6


class TestWithoutNumpy:
    def test_numpy_available_reflects_the_import(self, monkeypatch):
        monkeypatch.setattr(vectorised, "_np", None)
        assert vectorised.numpy_available() is False

    def test_lockstep_entry_points_fail_fast(self, monkeypatch):
        monkeypatch.setattr(vectorised, "_np", None)
        specs = [_spec(0, [VehicleAction(0.0, "drive", {})])]
        with pytest.raises(BackendUnavailableError, match="repro\\[fast\\]"):
            simulate_specs_vectorised(specs)
        with pytest.raises(BackendUnavailableError):
            simulate_block_vectorised(SpecBlock.encode(specs))
        with pytest.raises(BackendUnavailableError):
            parity_gate()

    def test_explicit_vectorised_backend_is_a_config_error(self, monkeypatch):
        monkeypatch.setattr(vectorised, "_np", None)
        config = ExperimentConfig(
            scenario="baseline_cruise", vehicles=4, backend="vectorised"
        )
        with FleetSession(config) as session:
            with pytest.raises(ConfigError, match="numpy"):
                session.run()

    def test_auto_backend_degrades_to_the_object_kernel(self, monkeypatch):
        plain = ExperimentConfig(scenario="baseline_cruise", vehicles=6, seed=2018)
        with FleetSession(plain) as session:
            expected = session.run().fingerprint()
        monkeypatch.setattr(vectorised, "_np", None)
        auto = ExperimentConfig(
            scenario="baseline_cruise", vehicles=6, seed=2018, backend="auto"
        )
        with FleetSession(auto) as session:
            assert session.run().fingerprint() == expected


class TestConfigSurface:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigError, match="backend"):
            ExperimentConfig(scenario="baseline_cruise", vehicles=4, backend="gpu")

    def test_vectorised_requires_counters_retention(self):
        with pytest.raises(ConfigError, match="counters"):
            ExperimentConfig(
                scenario="baseline_cruise",
                vehicles=4,
                backend="vectorised",
                trace_level="full",
            )

    def test_vectorised_requires_compiled_tables(self):
        with pytest.raises(ConfigError, match="compile_tables"):
            ExperimentConfig(
                scenario="baseline_cruise",
                vehicles=4,
                backend="vectorised",
                compile_tables=False,
            )

    def test_auto_is_always_a_legal_config(self):
        # auto in a non-eligible regime is not an error -- it resolves
        # to the object kernel at session time instead.
        config = ExperimentConfig(
            scenario="baseline_cruise", vehicles=4, backend="auto", trace_level="full"
        )
        assert config.backend == "auto"

    def test_backend_round_trips_and_reaches_the_cli(self):
        config = ExperimentConfig(
            scenario="baseline_cruise", vehicles=4, backend="auto"
        )
        as_dict = config.to_dict()
        assert as_dict["backend"] == "auto"
        assert ExperimentConfig.from_dict(as_dict) == config
        arguments = config.cli_arguments()
        flag = arguments.index("--backend")
        assert arguments[flag + 1] == "auto"

    def test_throughput_preset_opts_into_auto(self):
        assert (
            ExperimentConfig.throughput("baseline_cruise", 8).backend == "auto"
        )
