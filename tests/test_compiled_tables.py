"""Compiled decision tables: bit-identical to the object decision path.

The compiled fast path (``core/compiled.py`` + the HPE bitmask probe +
the fused bus delivery loop) is only admissible because its decisions
are provably identical to the authoritative approved-list object path.
These tests prove it three ways:

* structurally -- a table decompiles back to exactly the effective
  identifier sets it was lowered from, over every operating situation
  (all mode/flag combinations, covering the sixteen Table I rows);
* behaviourally -- a :class:`HardwarePolicyEngine` with a table
  installed grants/blocks exactly like one without, for every standard
  identifier and a sample of extended ones, with identical counters;
* property-based -- random policies fuzz the same equivalence.
"""

from itertools import product

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.can.frame import MAX_STANDARD_ID, CANFrame
from repro.core.compiled import CompiledDecisionTable, build_mask, mask_to_ids
from repro.core.policy import (
    AccessRule,
    CarSituation,
    Direction,
    PolicyCondition,
    RuleEffect,
    SecurityPolicy,
)
from repro.core.policy_engine import PolicyEvaluator
from repro.casestudy.builder import CaseStudyBuilder
from repro.hpe.engine import HardwarePolicyEngine
from repro.vehicle.messages import ALL_NODES, standard_catalog
from repro.vehicle.modes import CarMode

CATALOG = standard_catalog()

#: Every operating situation the policy model distinguishes: three car
#: modes x motion x alarm x accident.  Table I's sixteen rows all map
#: into this grid, so equivalence over the grid covers every row's
#: situation.
ALL_SITUATIONS = [
    CarSituation(mode=mode, in_motion=motion, alarm_armed=alarm, accident=accident)
    for mode, motion, alarm, accident in product(
        list(CarMode), (False, True), (False, True), (False, True)
    )
]

#: Identifiers probed in behavioural checks: the whole standard space
#: would be slow per case, so probe every catalogue id, their
#: neighbours, the bitset edges and a few extended ids.
PROBE_IDS = sorted(
    {m.can_id for m in CATALOG}
    | {m.can_id + 1 for m in CATALOG}
    | {0, 1, 7, 8, MAX_STANDARD_ID - 1, MAX_STANDARD_ID, 0x800, 0x1234, 0x1FFFFFFF}
)


@pytest.fixture(scope="module")
def case_study():
    builder = CaseStudyBuilder()
    return builder.model.policy, builder.evaluator


class TestMaskPrimitives:
    def test_round_trip(self):
        ids = {0, 1, 7, 8, 0x100, MAX_STANDARD_ID}
        assert mask_to_ids(build_mask(ids)) == frozenset(ids)

    def test_extended_ids_excluded_from_mask(self):
        assert mask_to_ids(build_mask({0x800, 5})) == frozenset({5})

    def test_empty(self):
        assert mask_to_ids(build_mask(())) == frozenset()


class TestCompiledVsEffective:
    def test_tables_decompile_to_effective_sets_in_every_situation(self, case_study):
        policy, evaluator = case_study
        for situation in ALL_SITUATIONS:
            for node in CATALOG.nodes():
                effective = evaluator.effective_for_node(node, policy, situation)
                table = evaluator.compile_for_node(node, policy, situation)
                assert table.read_ids() == effective.read_ids, (node, str(situation))
                assert table.write_ids() == effective.write_ids, (node, str(situation))

    def test_may_read_write_match_effective(self, case_study):
        policy, evaluator = case_study
        for situation in ALL_SITUATIONS:
            for node in CATALOG.nodes():
                effective = evaluator.effective_for_node(node, policy, situation)
                table = evaluator.compile_for_node(node, policy, situation)
                for can_id in PROBE_IDS:
                    assert table.may_read(can_id) == effective.may_read(can_id)
                    assert table.may_write(can_id) == effective.may_write(can_id)

    def test_compile_cache_hits(self, case_study):
        policy, evaluator = case_study
        situation = CarSituation()
        evaluator.compile_for_node("EV-ECU", policy, situation)
        misses = evaluator.compile_misses
        again = evaluator.compile_for_node("EV-ECU", policy, situation)
        assert evaluator.compile_misses == misses
        assert again is evaluator.compile_for_node("EV-ECU", policy, situation)

    def test_invalidate_clears_compiled_cache(self, case_study):
        policy, evaluator = case_study
        evaluator.compile_for_node("EV-ECU", policy, CarSituation())
        evaluator.invalidate()
        assert len(evaluator._compiled) == 0


def _engine_pair(read_ids, write_ids):
    """One engine with a compiled table installed, one without."""
    plain = HardwarePolicyEngine("n", read_ids, write_ids)
    fast = HardwarePolicyEngine("n", read_ids, write_ids)
    table = CompiledDecisionTable(
        node="n",
        read_mask=build_mask(read_ids),
        write_mask=build_mask(write_ids),
        read_overflow=frozenset(i for i in read_ids if i > MAX_STANDARD_ID),
        write_overflow=frozenset(i for i in write_ids if i > MAX_STANDARD_ID),
    )
    fast.install_compiled_table(table)
    return plain, fast


class TestEngineEquivalence:
    def test_case_study_decisions_identical_in_every_situation(self, case_study):
        policy, evaluator = case_study
        for situation in ALL_SITUATIONS:
            for node in ("EV-ECU", "Telematics", "Gateway"):
                effective = evaluator.effective_for_node(node, policy, situation)
                plain, fast = _engine_pair(
                    effective.sorted_read_ids, effective.sorted_write_ids
                )
                for can_id in PROBE_IDS:
                    frame = CANFrame(can_id=can_id, extended=can_id > MAX_STANDARD_ID)
                    assert plain.permit_read(frame) == fast.permit_read(frame)
                    assert plain.permit_write(frame) == fast.permit_write(frame)
                # Counter parity: the fast path accounts decisions,
                # grants, blocks and latency exactly like the object path.
                assert plain.decisions_made == fast.decisions_made
                assert plain.frames_blocked == fast.frames_blocked
                assert plain.total_latency_s == fast.total_latency_s

    def test_update_policy_drops_stale_table(self):
        plain, fast = _engine_pair((0x10, 0x20), (0x30,))
        assert fast.compiled_table is not None
        assert fast.update_policy((0x40,), (0x50,), key=0xC0FFEE)
        assert fast.compiled_table is None
        # Post-update decisions come from the (authoritative) new lists.
        assert fast.permit_read(CANFrame(can_id=0x40))
        assert not fast.permit_read(CANFrame(can_id=0x10))

    def test_failed_update_keeps_table(self):
        plain, fast = _engine_pair((0x10,), (0x30,))
        assert not fast.update_policy((0x40,), (0x50,), key=0xBAD)
        assert fast.compiled_table is not None
        assert fast.permit_read(CANFrame(can_id=0x10))


@given(
    read_ids=st.frozensets(st.integers(min_value=0, max_value=MAX_STANDARD_ID), max_size=40),
    write_ids=st.frozensets(st.integers(min_value=0, max_value=MAX_STANDARD_ID), max_size=40),
    probes=st.lists(
        st.integers(min_value=0, max_value=MAX_STANDARD_ID), min_size=1, max_size=30
    ),
)
@settings(max_examples=60, deadline=None)
def test_fuzzed_engine_equivalence(read_ids, write_ids, probes):
    plain, fast = _engine_pair(tuple(read_ids), tuple(write_ids))
    for can_id in probes:
        frame = CANFrame(can_id=can_id)
        assert plain.permit_read(frame) == fast.permit_read(frame)
        assert plain.permit_write(frame) == fast.permit_write(frame)
    assert plain.decisions_made == fast.decisions_made
    assert plain.frames_blocked == fast.frames_blocked


@given(
    rule_messages=st.lists(
        st.sampled_from([m.name for m in CATALOG]), min_size=1, max_size=3, unique=True
    ),
    effect=st.sampled_from(list(RuleEffect)),
    direction=st.sampled_from(list(Direction)),
    node=st.sampled_from(list(ALL_NODES)),
    situation=st.builds(
        CarSituation,
        mode=st.sampled_from(list(CarMode)),
        in_motion=st.booleans(),
        alarm_armed=st.booleans(),
        accident=st.booleans(),
    ),
)
@settings(max_examples=40, deadline=None)
def test_fuzzed_policy_compilation_matches_evaluation(
    rule_messages, effect, direction, node, situation
):
    """Random single-rule policies compile to their evaluated effective sets."""
    evaluator = PolicyEvaluator(CATALOG)
    policy = SecurityPolicy(name="fuzz")
    policy.add_rule(
        AccessRule(
            rule_id="P-FUZZ-1",
            effect=effect,
            node=node,
            direction=direction,
            messages=tuple(rule_messages),
            condition=PolicyCondition.always(),
        )
    )
    effective = evaluator.effective_for_node(node, policy, situation)
    table = evaluator.compile_for_node(node, policy, situation)
    assert table.read_ids() == effective.read_ids
    assert table.write_ids() == effective.write_ids
