"""Tests for the shared bus, nodes and the policy-hook integration."""

import pytest

from repro.can.bus import CANBus
from repro.can.errors import NodeDetachedError
from repro.can.frame import CANFrame
from repro.can.node import ApplicationHooks, CANNode
from repro.can.scheduler import EventScheduler
from repro.can.trace import TraceEventKind


def build_bus_with_nodes(*names: str) -> tuple[CANBus, dict[str, CANNode]]:
    bus = CANBus(EventScheduler())
    nodes = {}
    for name in names:
        node = CANNode(name)
        bus.attach(node)
        nodes[name] = node
    return bus, nodes


class DenyAllPolicy:
    """PolicyHook test double that blocks everything."""

    def permit_write(self, frame: CANFrame) -> bool:
        return False

    def permit_read(self, frame: CANFrame) -> bool:
        return False


class AllowListPolicy:
    """PolicyHook test double with explicit read/write allow sets."""

    def __init__(self, reads=(), writes=()):
        self.reads = set(reads)
        self.writes = set(writes)

    def permit_write(self, frame: CANFrame) -> bool:
        return frame.can_id in self.writes

    def permit_read(self, frame: CANFrame) -> bool:
        return frame.can_id in self.reads


class TestBroadcast:
    def test_frame_reaches_every_other_node(self):
        bus, nodes = build_bus_with_nodes("a", "b", "c")
        assert nodes["a"].send(CANFrame(can_id=0x10, data=b"\x01"))
        bus.run_until_idle()
        assert nodes["b"].received_ids() == [0x10]
        assert nodes["c"].received_ids() == [0x10]
        assert nodes["a"].received_ids() == []  # sender does not loop back

    def test_source_is_stamped_with_sender_name(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["a"].send(CANFrame(can_id=0x10))
        bus.run_until_idle()
        assert nodes["b"].inbox[0].source == "a"

    def test_trace_records_transmission_and_delivery(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["a"].send(CANFrame(can_id=0x10))
        bus.run_until_idle()
        assert bus.trace.count(TraceEventKind.SUBMITTED) == 1
        assert bus.trace.count(TraceEventKind.TRANSMITTED) == 1
        assert bus.trace.count(TraceEventKind.DELIVERED) == 1

    def test_statistics(self):
        bus, nodes = build_bus_with_nodes("a", "b", "c")
        nodes["a"].send(CANFrame(can_id=0x10))
        nodes["b"].send(CANFrame(can_id=0x20))
        bus.run_until_idle()
        assert bus.statistics.frames_submitted == 2
        assert bus.statistics.frames_transmitted == 2
        assert bus.statistics.frames_delivered == 4
        assert bus.statistics.busy_time > 0
        assert 0 < bus.statistics.utilisation(bus.scheduler.now + 1.0) <= 1.0

    def test_receive_callback_invoked(self):
        received = []
        bus = CANBus()
        sender = CANNode("sender")
        listener = CANNode("listener", hooks=ApplicationHooks(on_receive=received.append))
        bus.attach(sender)
        bus.attach(listener)
        sender.send(CANFrame(can_id=0x42))
        bus.run_until_idle()
        assert [f.can_id for f in received] == [0x42]


class TestArbitration:
    def test_lowest_id_wins_when_bus_busy(self):
        bus, nodes = build_bus_with_nodes("a", "b", "c")
        # First frame occupies the bus; the next two arbitrate.
        nodes["a"].send(CANFrame(can_id=0x100))
        nodes["b"].send(CANFrame(can_id=0x300))
        nodes["c"].send(CANFrame(can_id=0x200))
        bus.run_until_idle()
        transmitted = [r.frame.can_id for r in bus.trace.of_kind(TraceEventKind.TRANSMITTED)]
        assert transmitted == [0x100, 0x200, 0x300]
        assert bus.statistics.arbitration_conflicts >= 1


class TestTopology:
    def test_duplicate_node_names_rejected(self):
        bus, _ = build_bus_with_nodes("a")
        with pytest.raises(ValueError):
            bus.attach(CANNode("a"))

    def test_detach(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        bus.detach("b")
        assert bus.node_names() == ["a"]
        nodes["a"].send(CANFrame(can_id=0x1))
        bus.run_until_idle()
        assert nodes["b"].received_ids() == []
        with pytest.raises(KeyError):
            bus.detach("b")

    def test_node_lookup(self):
        bus, nodes = build_bus_with_nodes("a")
        assert bus.node("a") is nodes["a"]
        with pytest.raises(KeyError):
            bus.node("zz")

    def test_detached_node_cannot_send(self):
        node = CANNode("loner")
        with pytest.raises(NodeDetachedError):
            node.send(CANFrame(can_id=0x1))

    def test_broadcast_reach_excludes_sender(self):
        bus, _ = build_bus_with_nodes("a", "b", "c")
        assert set(bus.broadcast_reach("a")) == {"b", "c"}


class TestPolicyHookIntegration:
    def test_write_blocked_by_policy_never_reaches_bus(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["a"].policy_engine = DenyAllPolicy()
        assert not nodes["a"].send(CANFrame(can_id=0x10))
        bus.run_until_idle()
        assert bus.trace.count(TraceEventKind.TRANSMITTED) == 0
        assert bus.trace.count(TraceEventKind.BLOCKED_WRITE_POLICY) == 1
        assert nodes["a"].counters.send_blocked_by_policy == 1

    def test_read_blocked_by_policy_never_reaches_application(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["b"].policy_engine = DenyAllPolicy()
        nodes["a"].send(CANFrame(can_id=0x10))
        bus.run_until_idle()
        assert nodes["b"].received_ids() == []
        assert bus.trace.count(TraceEventKind.BLOCKED_READ_POLICY) == 1

    def test_allow_list_policy_is_selective(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["a"].policy_engine = AllowListPolicy(writes={0x10})
        nodes["b"].policy_engine = AllowListPolicy(reads={0x10})
        assert nodes["a"].send(CANFrame(can_id=0x10))
        assert not nodes["a"].send(CANFrame(can_id=0x20))
        bus.run_until_idle()
        assert nodes["b"].received_ids() == [0x10]

    def test_software_filter_blocked_write_is_traced(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["a"].controller.tx_filters.set_default_reject()
        assert not nodes["a"].send(CANFrame(can_id=0x10))
        assert bus.trace.count(TraceEventKind.BLOCKED_WRITE_FILTER) == 1

    def test_software_filter_blocked_read_is_traced(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["b"].controller.rx_filters.set_default_reject()
        nodes["a"].send(CANFrame(can_id=0x10))
        bus.run_until_idle()
        assert bus.trace.count(TraceEventKind.BLOCKED_READ_FILTER) == 1
        assert nodes["b"].received_ids() == []

    def test_firmware_compromise_bypasses_software_but_not_policy(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["a"].controller.tx_filters.set_default_reject()
        nodes["a"].policy_engine = AllowListPolicy(writes={0x10})
        # Software filter blocks before compromise...
        assert not nodes["a"].send(CANFrame(can_id=0x10))
        # ...compromise bypasses it, the policy hook still constrains IDs.
        nodes["a"].compromise_firmware()
        assert nodes["a"].firmware_compromised
        assert nodes["a"].send(CANFrame(can_id=0x10))
        assert not nodes["a"].send(CANFrame(can_id=0x99))
        nodes["a"].restore_firmware()
        assert not nodes["a"].firmware_compromised

    def test_blocked_callbacks_fire(self):
        blocked = []
        bus = CANBus()
        node = CANNode(
            "a",
            hooks=ApplicationHooks(
                on_send_blocked=lambda frame, reason: blocked.append(("send", reason))
            ),
        )
        node.policy_engine = DenyAllPolicy()
        bus.attach(node)
        node.send(CANFrame(can_id=0x10))
        assert blocked == [("send", "policy-engine")]

    def test_clear_inbox(self):
        bus, nodes = build_bus_with_nodes("a", "b")
        nodes["a"].send(CANFrame(can_id=0x10))
        bus.run_until_idle()
        nodes["b"].clear_inbox()
        assert nodes["b"].received_ids() == []
