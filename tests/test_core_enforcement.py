"""Tests for the enforcement coordinator and protected-car behaviour."""

import pytest

from repro.can.frame import CANFrame
from repro.core.enforcement import (
    EnforcementConfig,
    EnforcementCoordinator,
    build_protected_car,
)
from repro.core.policy import CarSituation
from repro.hpe.engine import HardwarePolicyEngine
from repro.vehicle.messages import NODE_EV_ECU, NODE_INFOTAINMENT
from repro.vehicle.modes import CarMode


class TestEnforcementConfig:
    def test_labels(self):
        assert EnforcementConfig.none().label == "unprotected"
        assert EnforcementConfig.software_only().label == "selinux-only"
        assert EnforcementConfig.hardware_only().label == "hpe-only"
        assert EnforcementConfig.full().label == "hpe+selinux"


class TestFitting:
    def test_full_fit_installs_engines_and_selinux(self, builder):
        car = builder.build_car(EnforcementConfig.full())
        coordinator = car.enforcement_coordinator
        assert isinstance(coordinator, EnforcementCoordinator)
        assert set(coordinator.engines) == set(car.node_names())
        for ecu in car.ecus():
            assert isinstance(ecu.node.policy_engine, HardwarePolicyEngine)
        assert car.infotainment.enforcement_point is not None
        assert coordinator.policy_store is not None

    def test_software_only_fit_has_no_engines(self, builder):
        car = builder.build_car(EnforcementConfig.software_only())
        coordinator = car.enforcement_coordinator
        assert coordinator.engines == {}
        assert all(ecu.node.policy_engine is None for ecu in car.ecus())
        assert car.infotainment.enforcement_point is not None

    def test_hardware_only_fit_has_no_selinux(self, builder):
        car = builder.build_car(EnforcementConfig.hardware_only())
        assert car.infotainment.enforcement_point is None
        assert car.enforcement_coordinator.engines

    def test_build_protected_car_convenience(self, builder):
        car = build_protected_car(builder.model.policy)
        assert getattr(car, "enforcement_coordinator", None) is not None


class TestNormalOperationUnderEnforcement:
    def test_legitimate_traffic_still_flows(self, protected_car):
        protected_car.start_periodic_traffic()
        protected_car.drive(accel=90, duration=0.5)
        assert protected_car.ev_ecu.sensor_state["accel"] >= 90
        assert protected_car.engine.rpm > 800
        assert protected_car.infotainment.displayed_status["speed"] > 0
        # Every component remains healthy while policies are enforced.
        assert all(protected_car.health().values())

    def test_theft_protection_still_works_when_parked_and_armed(self, protected_car):
        protected_car.park_and_arm()
        assert protected_car.door_locks.locked
        assert not protected_car.ev_ecu.propulsion_available

    def test_crash_response_still_works_in_fail_safe(self, protected_car):
        car = protected_car
        car.modes.enter_fail_safe()
        car.safety.declare_crash("integration test")
        car.run(0.05)
        assert not car.door_locks.locked
        assert car.telematics.emergency_calls_placed >= 1

    def test_system_updater_can_still_install_software(self, protected_car):
        infotainment = protected_car.infotainment
        assert infotainment.install_software(
            "oem-map-update", initiated_from=infotainment.SUBJECT_SYSTEM_UPDATER
        )
        assert not infotainment.install_software("sideloaded-app")


class TestSynchronisation:
    def test_mode_change_triggers_sync(self, protected_car):
        coordinator = protected_car.enforcement_coordinator
        before = coordinator.sync_count
        protected_car.modes.enter_fail_safe()
        assert coordinator.sync_count == before + 1

    def test_sync_reprograms_engines_through_authorised_channel(self, protected_car):
        coordinator = protected_car.enforcement_coordinator
        catalog = protected_car.catalog
        engine = coordinator.engines[NODE_EV_ECU]
        disable_id = catalog.id_of("ECU_DISABLE")
        assert not engine.permit_read(CANFrame(can_id=disable_id))
        protected_car.modes.enter_fail_safe()
        assert engine.permit_read(CANFrame(can_id=disable_id))
        assert engine.tamper_log.unauthorised_successes() == []
        assert coordinator.policy_pushes > 0

    def test_situation_observation(self, protected_car):
        situation = protected_car.enforcement_coordinator.sync(protected_car)
        assert isinstance(situation, CarSituation)
        assert situation.mode is protected_car.mode

    def test_motion_changes_doorlock_policy(self, protected_car):
        car = protected_car
        coordinator = car.enforcement_coordinator
        unlock_id = car.catalog.id_of("DOOR_UNLOCK_CMD")
        engine = coordinator.engines["DoorLocks"]
        assert engine.permit_read(CANFrame(can_id=unlock_id))
        car.door_locks.set_motion(True)
        coordinator.sync(car)
        assert not engine.permit_read(CANFrame(can_id=unlock_id))


class TestPolicyUpdates:
    def test_apply_policy_requires_newer_version(self, builder):
        car = builder.build_car(EnforcementConfig.full())
        coordinator = car.enforcement_coordinator
        stale = builder.model.policy  # same version as currently enforced
        with pytest.raises(ValueError):
            coordinator.apply_policy(stale, car)
        newer = builder.model.policy.next_version()
        coordinator.apply_policy(newer, car)
        assert coordinator.policy.version == newer.version

    def test_counters(self, protected_car):
        coordinator = protected_car.enforcement_coordinator
        protected_car.start_periodic_traffic()
        protected_car.run(0.2)
        assert coordinator.total_hpe_decisions() > 0
        assert coordinator.tamper_rejections() == 0

    def test_install_app_module_requires_selinux(self, builder):
        car = builder.build_car(EnforcementConfig.hardware_only())
        with pytest.raises(RuntimeError):
            car.enforcement_coordinator.install_app_module(
                builder.model.derivation.selinux_module
            )
