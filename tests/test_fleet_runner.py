"""Tests for the fleet runner: per-vehicle simulation and worker invariance."""

import pytest

from repro.fleet.runner import FleetRunner, config_for_label, simulate_vehicle
from repro.fleet.scenarios import VehicleAction, VehicleSpec, get_scenario

#: Small fleet sizes keep the multiprocessing tests fast while still
#: exercising chunking across several workers.
SMALL_FLEET = 12


def make_spec(vehicle_id=0, enforcement="hpe+selinux", actions=(), duration_s=0.2, seed=11):
    return VehicleSpec(
        vehicle_id=vehicle_id,
        scenario="unit-test",
        enforcement=enforcement,
        seed=seed,
        duration_s=duration_s,
        actions=tuple(actions),
    )


class TestConfigLabels:
    def test_all_labels_resolve(self):
        assert config_for_label("unprotected") is None
        assert config_for_label("hpe-only").use_hpe
        assert not config_for_label("hpe-only").use_selinux
        assert config_for_label("selinux-only").use_selinux
        full = config_for_label("hpe+selinux")
        assert full.use_hpe and full.use_selinux

    def test_unknown_label_raises(self):
        with pytest.raises(KeyError, match="unknown enforcement label"):
            config_for_label("mystery")


class TestSimulateVehicle:
    def test_outcome_reflects_the_spec(self, builder):
        spec = make_spec(vehicle_id=3, actions=[VehicleAction(0.0, "drive", {"accel": 70})])
        outcome = simulate_vehicle(spec, builder)
        assert outcome.vehicle_id == 3
        assert outcome.scenario == "unit-test"
        assert outcome.enforcement == "hpe+selinux"
        assert outcome.simulated_seconds >= spec.duration_s
        assert outcome.frames_transmitted > 0
        assert outcome.hpe_decisions > 0
        assert outcome.healthy

    def test_unprotected_vehicle_reports_no_enforcement_activity(self, builder):
        spec = make_spec(enforcement="unprotected",
                         actions=[VehicleAction(0.0, "drive", {"accel": 70})])
        outcome = simulate_vehicle(spec, builder)
        assert outcome.hpe_decisions == 0
        assert outcome.frames_blocked == 0
        assert outcome.mean_decision_latency_s == 0.0

    def test_protection_decides_attack_outcome(self, builder):
        attack = [VehicleAction(0.05, "attack", {"threat_id": "T01"})]
        protected = simulate_vehicle(make_spec(actions=attack), builder)
        unprotected = simulate_vehicle(
            make_spec(enforcement="unprotected", actions=attack), builder
        )
        assert protected.attacks_attempted == unprotected.attacks_attempted == 1
        assert protected.attacks_mitigated == 1
        assert protected.healthy
        assert unprotected.attacks_mitigated == 0
        assert not unprotected.healthy

    def test_policy_update_action_bumps_enforced_version(self, builder):
        spec = make_spec(actions=[VehicleAction(0.05, "policy_update", {})])
        outcome = simulate_vehicle(spec, builder)
        # The OTA path re-syncs every engine after the version bump.
        assert outcome.policy_pushes >= 0
        assert outcome.healthy

    def test_unknown_action_kind_raises(self, builder):
        spec = make_spec(actions=[VehicleAction(0.0, "teleport", {})])
        with pytest.raises(ValueError, match="unknown fleet action"):
            simulate_vehicle(spec, builder)

    def test_same_spec_gives_identical_deterministic_outcome(self, builder):
        spec = make_spec(actions=[VehicleAction(0.05, "fuzz", {"frames": 40})])
        first = simulate_vehicle(spec, builder)
        second = simulate_vehicle(spec, builder)
        assert first.deterministic_tuple() == second.deterministic_tuple()


class TestFleetRunner:
    def test_workers_must_be_positive(self):
        with pytest.raises(ValueError):
            FleetRunner(workers=0)

    def test_run_accepts_scenario_name_or_object(self):
        by_name = FleetRunner().run("baseline_cruise", SMALL_FLEET, seed=3)
        by_object = FleetRunner().run(get_scenario("baseline_cruise"), SMALL_FLEET, seed=3)
        assert by_name.fingerprint() == by_object.fingerprint()
        assert by_name.vehicles == SMALL_FLEET

    def test_parallel_aggregates_are_bit_identical_to_serial(self):
        serial = FleetRunner(workers=1).run("mixed_ev_dos", SMALL_FLEET, seed=42)
        parallel = FleetRunner(workers=4, chunk_size=2).run(
            "mixed_ev_dos", SMALL_FLEET, seed=42
        )
        assert serial.fingerprint() == parallel.fingerprint()
        assert serial.frames_transmitted == parallel.frames_transmitted
        assert serial.frames_blocked == parallel.frames_blocked
        assert serial.latency_p99_s == parallel.latency_p99_s
        assert serial.enforcement_mix == parallel.enforcement_mix

    def test_run_many_uses_globally_unique_vehicle_ids(self):
        results = FleetRunner().run_many(
            ("baseline_cruise", "fuzz_probe"), vehicles_each=4, seed=1
        )
        assert set(results) == {"baseline_cruise", "fuzz_probe"}
        assert all(result.vehicles == 4 for result in results.values())

    def test_wall_clock_throughput_is_reported(self):
        result = FleetRunner().run("baseline_cruise", SMALL_FLEET, seed=3)
        assert result.wall_seconds > 0
        assert result.frames_per_second > 0
        assert result.vehicles_per_second > 0
