"""Tests for the core policy model (permissions, conditions, rules, policy)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import (
    AccessRule,
    CarSituation,
    Direction,
    Permission,
    PolicyCondition,
    RuleEffect,
    SecurityPolicy,
)
from repro.selinux.compiler import PermissionStatement
from repro.vehicle.car import ConnectedCar
from repro.vehicle.modes import CarMode

situations = st.builds(
    CarSituation,
    mode=st.sampled_from(list(CarMode)),
    in_motion=st.booleans(),
    alarm_armed=st.booleans(),
    accident=st.booleans(),
)
conditions = st.builds(
    PolicyCondition,
    modes=st.frozensets(st.sampled_from(list(CarMode)), max_size=3),
    in_motion=st.one_of(st.none(), st.booleans()),
    alarm_armed=st.one_of(st.none(), st.booleans()),
    accident=st.one_of(st.none(), st.booleans()),
)


class TestPermission:
    def test_parse_paper_notation(self):
        assert Permission.parse("R") is Permission.READ
        assert Permission.parse("rw") is Permission.READ_WRITE
        assert Permission.parse("W") is Permission.WRITE
        assert Permission.parse("-") is Permission.NONE

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            Permission.parse("X")

    def test_read_write_flags(self):
        assert Permission.READ.allows_read and not Permission.READ.allows_write
        assert Permission.WRITE.allows_write and not Permission.WRITE.allows_read
        assert Permission.READ_WRITE.allows_read and Permission.READ_WRITE.allows_write
        assert not Permission.NONE.allows_read and not Permission.NONE.allows_write


class TestCarSituation:
    def test_observe_from_live_car(self):
        car = ConnectedCar()
        situation = CarSituation.observe(car)
        assert situation.mode is CarMode.NORMAL
        assert not situation.in_motion
        car.door_locks.set_motion(True)
        car.safety.arm_alarm()
        car.safety.failsafe_active = True
        situation = CarSituation.observe(car)
        assert situation.in_motion and situation.alarm_armed and situation.accident


class TestPolicyCondition:
    def test_unconditional_matches_everything(self):
        condition = PolicyCondition.always()
        assert condition.is_unconditional
        assert condition.matches(CarSituation())
        assert condition.matches(
            CarSituation(CarMode.FAIL_SAFE, in_motion=True, alarm_armed=True, accident=True)
        )

    def test_mode_restriction(self):
        condition = PolicyCondition.in_modes(CarMode.NORMAL)
        assert condition.matches(CarSituation(CarMode.NORMAL))
        assert not condition.matches(CarSituation(CarMode.FAIL_SAFE))

    def test_flag_restrictions(self):
        condition = PolicyCondition(in_motion=True, accident=False)
        assert condition.matches(CarSituation(in_motion=True, accident=False))
        assert not condition.matches(CarSituation(in_motion=True, accident=True))
        assert not condition.matches(CarSituation(in_motion=False, accident=False))

    def test_overlap(self):
        in_motion = PolicyCondition(in_motion=True)
        stationary = PolicyCondition(in_motion=False)
        normal_only = PolicyCondition.in_modes(CarMode.NORMAL)
        failsafe_only = PolicyCondition.in_modes(CarMode.FAIL_SAFE)
        assert not in_motion.overlaps(stationary)
        assert not normal_only.overlaps(failsafe_only)
        assert in_motion.overlaps(normal_only)
        assert PolicyCondition.always().overlaps(in_motion)

    def test_render(self):
        condition = PolicyCondition(
            modes=frozenset({CarMode.NORMAL}), in_motion=True, alarm_armed=False
        )
        rendered = condition.render()
        assert "mode=normal" in rendered
        assert "in-motion" in rendered
        assert "alarm-disarmed" in rendered
        assert PolicyCondition.always().render() == ""

    @given(conditions, situations)
    def test_unconditional_iff_matches_all(self, condition, situation):
        if condition.is_unconditional:
            assert condition.matches(situation)

    @given(conditions, conditions, situations)
    def test_overlap_is_sound(self, first, second, situation):
        # If one situation satisfies both conditions, overlaps() must be True.
        if first.matches(situation) and second.matches(situation):
            assert first.overlaps(second)


class TestAccessRule:
    def make_rule(self, **kwargs) -> AccessRule:
        defaults = dict(
            rule_id="P-1",
            effect=RuleEffect.DENY,
            node="EV-ECU",
            direction=Direction.READ,
            messages=("ECU_DISABLE",),
        )
        defaults.update(kwargs)
        return AccessRule(**defaults)

    def test_validation(self):
        with pytest.raises(ValueError):
            self.make_rule(rule_id=" ")
        with pytest.raises(ValueError):
            self.make_rule(node=" ")
        with pytest.raises(ValueError):
            self.make_rule(messages=())

    def test_covers(self):
        rule = self.make_rule()
        assert rule.covers_node("EV-ECU")
        assert not rule.covers_node("EPS")
        assert rule.covers_message("ECU_DISABLE")
        assert not rule.covers_message("ECU_ENABLE")
        wildcard = self.make_rule(rule_id="P-2", node="*", messages=("*",))
        assert wildcard.covers_node("anything")
        assert wildcard.covers_message("anything")

    def test_applies_combines_node_and_condition(self):
        rule = self.make_rule(condition=PolicyCondition(in_motion=True))
        assert rule.applies("EV-ECU", CarSituation(in_motion=True))
        assert not rule.applies("EV-ECU", CarSituation(in_motion=False))
        assert not rule.applies("EPS", CarSituation(in_motion=True))

    def test_direction_coverage(self):
        assert Direction.BOTH.covers_read and Direction.BOTH.covers_write
        assert Direction.READ.covers_read and not Direction.READ.covers_write


class TestSecurityPolicy:
    def make_policy(self) -> SecurityPolicy:
        policy = SecurityPolicy("test-policy", version=1)
        policy.add_rule(
            AccessRule("P-1", RuleEffect.DENY, "EV-ECU", Direction.READ,
                       ("ECU_DISABLE",), derived_from="T01")
        )
        policy.add_rule(
            AccessRule("P-2", RuleEffect.DENY, "Sensors", Direction.WRITE,
                       ("ECU_DISABLE",), derived_from="T02")
        )
        policy.add_app_statement(
            PermissionStatement("a_t", "b_t", "package", frozenset({"install"}))
        )
        return policy

    def test_basic_accessors(self):
        policy = self.make_policy()
        assert len(policy) == 2
        assert "P-1" in policy
        assert policy.rule("P-1").node == "EV-ECU"
        assert len(policy.app_statements) == 1
        assert policy.mitigated_threats() == {"T01", "T02"}
        assert [r.rule_id for r in policy.rules_for_node("EV-ECU")] == ["P-1"]
        assert [r.rule_id for r in policy.rules_derived_from("T02")] == ["P-2"]

    def test_duplicate_rule_id_rejected(self):
        policy = self.make_policy()
        with pytest.raises(ValueError):
            policy.add_rule(
                AccessRule("P-1", RuleEffect.ALLOW, "EPS", Direction.READ, ("EPS_STATUS",))
            )

    def test_remove_rule(self):
        policy = self.make_policy()
        policy.remove_rule("P-1")
        assert "P-1" not in policy
        with pytest.raises(KeyError):
            policy.remove_rule("P-1")

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            SecurityPolicy(" ")
        with pytest.raises(ValueError):
            SecurityPolicy("x", version=0)

    def test_next_version(self):
        policy = self.make_policy()
        successor = policy.next_version("after new threat")
        assert successor.version == 2
        assert len(successor) == len(policy)
        assert successor.description == "after new threat"

    def test_merge_supersedes_both(self):
        base = self.make_policy()
        addition = SecurityPolicy("test-policy", version=2)
        addition.add_rule(
            AccessRule("P-3", RuleEffect.DENY, "EPS", Direction.READ,
                       ("EPS_DEACTIVATE",), derived_from="T05")
        )
        merged = base.merge(addition)
        assert merged.version == 3
        assert {r.rule_id for r in merged.access_rules} == {"P-1", "P-2", "P-3"}
        assert merged.mitigated_threats() == {"T01", "T02", "T05"}

    def test_summary(self):
        summary = self.make_policy().summary()
        assert summary["access_rules"] == 2
        assert summary["app_statements"] == 1
        assert summary["mitigated_threats"] == 2
